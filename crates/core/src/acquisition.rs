//! The constrained Expected Improvement acquisition function (paper
//! Section 3).
//!
//! For a candidate configuration `x` with predicted cost distribution
//! `N(µ(x), σ(x)²)`:
//!
//! * `EI(x)` is the expected improvement of `C(x)` below the incumbent `y*`;
//! * `PC(x)` is the probability that the configuration satisfies the runtime
//!   constraint. Lynceus reuses the cost model for this: since
//!   `C(x) = T(x)·U(x)` and `U(x)` is known, `P(T(x) ≤ Tmax)` is evaluated as
//!   `P(C(x) ≤ Tmax·U(x))`;
//! * `EIc(x) = EI(x)·PC(x)`.
//!
//! The incumbent `y*` is the cost of the cheapest *feasible* configuration
//! profiled so far; when no feasible configuration has been found yet, the
//! paper (following Lam & Willcox) uses the most expensive profiled cost plus
//! three times the largest predictive standard deviation over the untested
//! configurations.

use lynceus_learners::Prediction;
use lynceus_math::normal::StandardNormal;
use lynceus_math::quadrature::normal_below;

/// Expected improvement of a Gaussian cost prediction below the incumbent
/// `y_best` (minimization).
#[must_use]
pub fn expected_improvement(y_best: f64, prediction: Prediction) -> f64 {
    StandardNormal::expected_improvement(y_best, prediction.mean, prediction.std)
}

/// Probability that the predicted cost is below `cost_cap` (used both for the
/// runtime-constraint probability `PC(x)` with `cost_cap = Tmax·U(x)` and for
/// the budget filter with `cost_cap = β`).
#[must_use]
pub fn feasibility_probability(prediction: Prediction, cost_cap: f64) -> f64 {
    normal_below(prediction.mean, prediction.std, cost_cap)
}

/// Precomputed threshold for the budget filter: `z` such that
/// `P(C(x) ≤ β) ≥ confidence ⟺ µ(x) + z·σ(x) ≤ β` for a Gaussian
/// prediction.
///
/// The budget filter runs once per untested configuration per (real or
/// speculated) optimizer state; phrasing it as a linear comparison against a
/// once-per-decision quantile removes a normal-cdf evaluation from that
/// inner loop.
///
/// # Panics
///
/// Panics if `confidence` is not strictly between 0 and 1.
#[must_use]
pub fn budget_filter_z(confidence: f64) -> f64 {
    StandardNormal::quantile(confidence)
}

/// True when the predicted cost fits the budget `beta` at the confidence
/// level encoded by `z` (see [`budget_filter_z`]): `µ + z·σ ≤ β`, with the
/// degenerate `σ ≤ 0` prediction feasible iff `µ ≤ β`. NaN predictions are
/// never feasible.
#[must_use]
pub fn fits_budget(prediction: Prediction, beta: f64, z: f64) -> bool {
    if prediction.std <= 0.0 || !prediction.std.is_finite() {
        prediction.mean <= beta
    } else {
        prediction.mean + z * prediction.std <= beta
    }
}

/// Constrained expected improvement `EIc(x) = EI(x)·P(C(x) ≤ Tmax·U(x))`.
#[must_use]
pub fn constrained_ei(y_best: f64, prediction: Prediction, constraint_cost_cap: f64) -> f64 {
    expected_improvement(y_best, prediction)
        * feasibility_probability(prediction, constraint_cost_cap)
}

/// Total order over acquisition scores that treats NaN as the worst value.
///
/// `EIc` arithmetic can produce NaN in degenerate states (e.g. an infinite
/// incumbent multiplied by a zero feasibility probability); the selection
/// loops must *never* abort the whole optimization over one poisoned score,
/// and must never pick it either. NaN (of either sign) compares below every
/// real number, including `-inf`; apart from that the order is
/// [`f64::total_cmp`].
#[must_use]
pub fn score_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

/// Maps a (non-NaN) score to a `u64` key whose integer order matches
/// [`score_cmp`]: `score_cmp(a, b) == score_key(a).cmp(&score_key(b))` for
/// all non-NaN `a`, `b`.
///
/// The branch-and-bound speculation engine shares its running incumbent
/// score across worker threads through a single `AtomicU64` updated with
/// `fetch_max`; this mapping (the classical sign-flip trick behind
/// `f64::total_cmp`) is what makes a lock-free monotone maximum correct.
/// Every key of a non-NaN score is strictly greater than 0, so 0 can serve
/// as the "no incumbent yet" sentinel. NaN scores must not be encoded (a
/// NaN can never become the incumbent — [`score_cmp`] ranks it below every
/// real score); callers filter them out.
#[must_use]
pub fn score_key(score: f64) -> u64 {
    debug_assert!(!score.is_nan(), "NaN scores have no incumbent key");
    let bits = score.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Inverse of [`score_key`]: recovers the score a key encodes. The
/// branch-and-bound engine reads shared maxima (incumbent score, largest
/// observed deep tail) back out of their atomic cells with this.
#[must_use]
pub fn score_from_key(key: u64) -> f64 {
    if key >> 63 == 1 {
        f64::from_bits(key & !(1 << 63))
    } else {
        f64::from_bits(!key)
    }
}

/// The incumbent `y*` used by the acquisition function.
///
/// * `profiled` holds `(cost, feasible)` for every configuration profiled so
///   far (feasible = runtime within `Tmax`).
/// * `max_untested_std` is the largest predictive standard deviation over the
///   configurations not yet profiled, used in the fallback when nothing
///   feasible has been found yet.
///
/// Returns `f64::INFINITY` when nothing has been profiled at all (every
/// candidate then has unbounded improvement, which is the desired degenerate
/// behaviour before the bootstrap phase).
#[must_use]
pub fn incumbent_cost(profiled: &[(f64, bool)], max_untested_std: f64) -> f64 {
    let best_feasible = profiled
        .iter()
        .filter(|(_, feasible)| *feasible)
        .map(|(cost, _)| *cost)
        .fold(None, |acc: Option<f64>, c| {
            Some(acc.map_or(c, |a| a.min(c)))
        });
    if let Some(best) = best_feasible {
        return best;
    }
    let max_cost = profiled
        .iter()
        .map(|(cost, _)| *cost)
        .fold(None, |acc: Option<f64>, c| {
            Some(acc.map_or(c, |a| a.max(c)))
        });
    match max_cost {
        Some(max) => max + 3.0 * max_untested_std,
        None => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(mean: f64, std: f64) -> Prediction {
        Prediction { mean, std }
    }

    #[test]
    fn ei_prefers_lower_means_at_equal_uncertainty() {
        let better = expected_improvement(10.0, pred(5.0, 1.0));
        let worse = expected_improvement(10.0, pred(8.0, 1.0));
        assert!(better > worse);
    }

    #[test]
    fn ei_prefers_uncertainty_at_equal_means() {
        let explore = expected_improvement(10.0, pred(11.0, 4.0));
        let exploit = expected_improvement(10.0, pred(11.0, 0.5));
        assert!(explore > exploit);
    }

    #[test]
    fn feasibility_probability_matches_the_normal_cdf() {
        assert!((feasibility_probability(pred(5.0, 1.0), 5.0) - 0.5).abs() < 1e-12);
        assert!(feasibility_probability(pred(5.0, 1.0), 10.0) > 0.99);
        assert!(feasibility_probability(pred(5.0, 1.0), 1.0) < 0.01);
        // Degenerate prediction: deterministic outcome.
        assert_eq!(feasibility_probability(pred(5.0, 0.0), 6.0), 1.0);
        assert_eq!(feasibility_probability(pred(5.0, 0.0), 4.0), 0.0);
    }

    #[test]
    fn constrained_ei_is_damped_by_infeasibility() {
        let unconstrained = expected_improvement(10.0, pred(6.0, 1.0));
        // A cap far above the mean barely dampens the EI...
        let loose = constrained_ei(10.0, pred(6.0, 1.0), 100.0);
        assert!((loose - unconstrained).abs() < 1e-9);
        // ...while a cap far below it kills the score.
        let tight = constrained_ei(10.0, pred(6.0, 1.0), 1.0);
        assert!(tight < unconstrained * 0.01);
    }

    #[test]
    fn incumbent_prefers_the_cheapest_feasible_configuration() {
        let profiled = [(10.0, true), (4.0, false), (7.0, true)];
        assert_eq!(incumbent_cost(&profiled, 2.0), 7.0);
    }

    #[test]
    fn incumbent_falls_back_to_the_pessimistic_estimate() {
        let profiled = [(10.0, false), (4.0, false)];
        assert_eq!(incumbent_cost(&profiled, 2.0), 10.0 + 6.0);
    }

    #[test]
    fn incumbent_of_an_empty_history_is_unbounded() {
        assert_eq!(incumbent_cost(&[], 1.0), f64::INFINITY);
    }

    #[test]
    fn budget_filter_threshold_matches_the_cdf_formulation() {
        let z = budget_filter_z(0.99);
        let mut cases = 0;
        for mean in [1.0, 40.0, 80.0, 119.0] {
            for std in [0.0, 0.5, 5.0, 40.0] {
                let p = pred(mean, std);
                let by_threshold = fits_budget(p, 100.0, z);
                let by_cdf = feasibility_probability(p, 100.0) >= 0.99;
                assert_eq!(by_threshold, by_cdf, "mismatch at µ={mean}, σ={std}");
                cases += 1;
            }
        }
        assert_eq!(cases, 16);
        // NaN predictions are never feasible.
        assert!(!fits_budget(pred(f64::NAN, 1.0), 100.0, z));
        assert!(!fits_budget(pred(f64::NAN, 0.0), 100.0, z));
    }

    #[test]
    fn score_key_order_matches_score_cmp_and_leaves_zero_as_sentinel() {
        let scores = [
            f64::NEG_INFINITY,
            -1e300,
            -1.5,
            -0.0,
            0.0,
            1e-300,
            0.25,
            3.5,
            1e300,
            f64::INFINITY,
        ];
        for &a in &scores {
            // Every real key clears the "no incumbent yet" sentinel.
            assert!(score_key(a) > 0, "key of {a} collides with the sentinel");
            // And the encoding round-trips bit-exactly.
            assert_eq!(score_from_key(score_key(a)).to_bits(), a.to_bits());
            for &b in &scores {
                assert_eq!(
                    score_key(a).cmp(&score_key(b)),
                    score_cmp(a, b),
                    "key order diverges from score_cmp at ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn score_key_round_trips_and_orders_a_seeded_sweep_of_extreme_floats() {
        use lynceus_math::rng::SeededRng;

        // Every edge regime of the f64 line, plus a seeded sweep of raw bit
        // patterns: the key mapping must round-trip bit-exactly and agree
        // with `score_cmp` on every pair — the branch-and-bound engine's
        // shared incumbent/tail cells depend on both properties for any
        // score arithmetic can produce.
        let mut values = vec![
            -0.0,
            0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            // Subnormals: the smallest positive/negative, and mid-range ones.
            f64::from_bits(1),
            -f64::from_bits(1),
            f64::from_bits(0x000F_FFFF_FFFF_FFFF),
            -f64::from_bits(0x000F_FFFF_FFFF_FFFF),
        ];
        let mut rng = SeededRng::new(0xF10A7);
        while values.len() < 96 {
            let candidate = f64::from_bits(rng.next_u64());
            if !candidate.is_nan() {
                values.push(candidate);
            }
        }
        for &a in &values {
            assert!(
                score_key(a) > 0,
                "key of {a:e} collides with the no-incumbent sentinel"
            );
            assert_eq!(
                score_from_key(score_key(a)).to_bits(),
                a.to_bits(),
                "round-trip changed the bits of {a:e}"
            );
            for &b in &values {
                assert_eq!(
                    score_key(a).cmp(&score_key(b)),
                    score_cmp(a, b),
                    "key order diverges from score_cmp at ({a:e}, {b:e})"
                );
            }
        }
    }

    #[test]
    fn score_cmp_treats_nan_as_worst_and_orders_reals_totally() {
        use std::cmp::Ordering;
        assert_eq!(score_cmp(f64::NAN, -1e300), Ordering::Less);
        assert_eq!(score_cmp(f64::NAN, f64::NEG_INFINITY), Ordering::Less);
        assert_eq!(score_cmp(0.0, f64::NAN), Ordering::Greater);
        assert_eq!(score_cmp(f64::NAN, f64::NAN), Ordering::Equal);
        assert_eq!(score_cmp(1.0, 2.0), Ordering::Less);
        assert_eq!(score_cmp(f64::INFINITY, 1.0), Ordering::Greater);
        // An argmax over scores with a NaN member picks a real score.
        let scores = [0.3, f64::NAN, 0.7, 0.1];
        let best = (0..scores.len())
            .max_by(|&a, &b| score_cmp(scores[a], scores[b]))
            .unwrap();
        assert_eq!(best, 2);
    }
}
