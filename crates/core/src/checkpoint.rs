//! Checkpoint/replay durability: serialized session snapshots and the
//! stores that hold them.
//!
//! A Lynceus session's full state is small and explicit — the search state
//! `Σ = ⟨S, T, β, χ⟩`, the seed, the RNG position, the remaining bootstrap
//! plan, the exploration log, the receipt trail and the oracle's durable
//! cursor — so the whole thing serializes in a few kilobytes with the
//! [`crate::codec`] wire format. [`crate::service::TuningService`] writes a
//! [`SessionCheckpoint`] at every decision boundary; a killed process calls
//! [`crate::service::TuningService::restore`] and every session resumes from
//! its latest checkpoint, finishing with a report **bit-identical** to the
//! uninterrupted run (the surrogate is rebuilt from the checkpointed
//! training set via the exact incremental refit, so no model state needs to
//! be persisted).
//!
//! Two stores ship with the crate: [`MemoryStore`] (in-process, used by the
//! kill-and-resume suites) and [`DirStore`] (one file per session,
//! write-temp-then-rename so a crash mid-write never corrupts the previous
//! checkpoint).

use crate::codec::{CodecError, Decoder, Encoder};
use crate::optimizer::Exploration;
use crate::oracle::Observation;
use crate::receipt::DecisionReceipt;
use crate::state::TestedConfig;
use lynceus_space::ConfigId;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Mutex;

/// File magic of the checkpoint format.
const MAGIC: [u8; 4] = *b"LYNC";
/// Format version; bumped on any wire-format change. Version 2 added the
/// cross-run knowledge fields (attached prior, harvested anchor keys).
const VERSION: u32 = 2;

/// A serialized-state snapshot of one session at a decision boundary.
///
/// The snapshot holds everything a bit-identical resume needs: seed, step
/// count, RNG position, the remaining bootstrap plan, the full search state
/// (training set, untested order, budget bits, deployed configuration), the
/// exploration log, the receipt trail, the retry ledger and the oracle's
/// opaque durable state (e.g. a fault-plan cursor). The surrogate ensemble
/// is deliberately absent: rebuilding it from the checkpointed training set
/// is bit-identical to the incremental refits of the uninterrupted run.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCheckpoint {
    pub(crate) seed: u64,
    pub(crate) steps: u64,
    pub(crate) attempts_used: u32,
    pub(crate) pending_faults: u32,
    pub(crate) pending_retries: u32,
    pub(crate) rng_state: [u64; 4],
    pub(crate) bootstrap_plan: Vec<Vec<usize>>,
    pub(crate) tested: Vec<TestedConfig>,
    /// The untested ids **in their live order**: `SearchState::record`
    /// swap-removes, so the order is history-dependent and tie-breaks
    /// acquisition scores — it must be restored exactly, not recomputed.
    pub(crate) untested: Vec<ConfigId>,
    pub(crate) budget_initial: f64,
    pub(crate) budget_remaining: f64,
    pub(crate) current: Option<ConfigId>,
    pub(crate) explorations: Vec<Exploration>,
    pub(crate) receipts: Vec<DecisionReceipt>,
    pub(crate) oracle_state: Option<Vec<u8>>,
    /// The knowledge record attached at admission, carried verbatim so a
    /// killed warm session resumes bit-identically from the checkpoint
    /// alone — independent of whatever the knowledge store holds by then.
    pub(crate) prior: Option<crate::transfer::JobKnowledge>,
    /// Ratcheted warm-anchor harvest at the snapshot (see
    /// [`crate::transfer`] for the incumbent/tail safety asymmetry).
    pub(crate) harvest_incumbent_key: u64,
    pub(crate) harvest_tail_key: u64,
}

impl SessionCheckpoint {
    /// The seed the session was created with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of profiling steps completed at the snapshot.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The receipt trail up to the snapshot.
    #[must_use]
    pub fn receipts(&self) -> &[DecisionReceipt] {
        &self.receipts
    }

    /// Serializes the snapshot.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_bytes(&MAGIC);
        enc.put_u32(VERSION);
        enc.put_u64(self.seed);
        enc.put_u64(self.steps);
        enc.put_u32(self.attempts_used);
        enc.put_u32(self.pending_faults);
        enc.put_u32(self.pending_retries);
        for word in self.rng_state {
            enc.put_u64(word);
        }
        enc.put_usize(self.bootstrap_plan.len());
        for sample in &self.bootstrap_plan {
            enc.put_usize(sample.len());
            for &level in sample {
                enc.put_usize(level);
            }
        }
        enc.put_usize(self.tested.len());
        for t in &self.tested {
            enc.put_usize(t.id.index());
            enc.put_f64(t.cost);
            enc.put_bool(t.feasible);
        }
        enc.put_usize(self.untested.len());
        for id in &self.untested {
            enc.put_usize(id.index());
        }
        enc.put_f64(self.budget_initial);
        enc.put_f64(self.budget_remaining);
        match self.current {
            Some(id) => {
                enc.put_bool(true);
                enc.put_usize(id.index());
            }
            None => enc.put_bool(false),
        }
        enc.put_usize(self.explorations.len());
        for e in &self.explorations {
            enc.put_usize(e.id.index());
            enc.put_f64(e.observation.runtime_seconds);
            enc.put_f64(e.observation.cost);
            enc.put_usize(e.observation.metrics.len());
            for &metric in &e.observation.metrics {
                enc.put_f64(metric);
            }
            enc.put_bool(e.bootstrap);
        }
        enc.put_usize(self.receipts.len());
        for receipt in &self.receipts {
            receipt.encode_into(&mut enc);
        }
        match &self.oracle_state {
            Some(bytes) => {
                enc.put_bool(true);
                enc.put_bytes(bytes);
            }
            None => enc.put_bool(false),
        }
        match &self.prior {
            Some(prior) => {
                enc.put_bool(true);
                enc.put_bytes(&prior.encode());
            }
            None => enc.put_bool(false),
        }
        enc.put_u64(self.harvest_incumbent_key);
        enc.put_u64(self.harvest_tail_key);
        enc.finish()
    }

    /// Deserializes a snapshot.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated input, a magic/version
    /// mismatch, or any malformed field — a corrupt checkpoint degrades to a
    /// recoverable per-session error, never a panic.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Decoder::new(bytes);
        if dec.get_bytes()? != MAGIC {
            return Err(CodecError::Invalid("not a Lynceus checkpoint"));
        }
        if dec.get_u32()? != VERSION {
            return Err(CodecError::Invalid("unsupported checkpoint version"));
        }
        let seed = dec.get_u64()?;
        let steps = dec.get_u64()?;
        let attempts_used = dec.get_u32()?;
        let pending_faults = dec.get_u32()?;
        let pending_retries = dec.get_u32()?;
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = dec.get_u64()?;
        }
        let plan_len = dec.get_usize()?;
        let mut bootstrap_plan = Vec::with_capacity(plan_len.min(1024));
        for _ in 0..plan_len {
            let sample_len = dec.get_usize()?;
            let mut sample = Vec::with_capacity(sample_len.min(1024));
            for _ in 0..sample_len {
                sample.push(dec.get_usize()?);
            }
            bootstrap_plan.push(sample);
        }
        let tested_len = dec.get_usize()?;
        let mut tested = Vec::with_capacity(tested_len.min(4096));
        for _ in 0..tested_len {
            let id = ConfigId(dec.get_usize()?);
            let cost = dec.get_f64()?;
            let feasible = dec.get_bool()?;
            tested.push(TestedConfig { id, cost, feasible });
        }
        let untested_len = dec.get_usize()?;
        let mut untested = Vec::with_capacity(untested_len.min(65_536));
        for _ in 0..untested_len {
            untested.push(ConfigId(dec.get_usize()?));
        }
        let budget_initial = dec.get_f64()?;
        let budget_remaining = dec.get_f64()?;
        let current = if dec.get_bool()? {
            Some(ConfigId(dec.get_usize()?))
        } else {
            None
        };
        let explorations_len = dec.get_usize()?;
        let mut explorations = Vec::with_capacity(explorations_len.min(4096));
        for _ in 0..explorations_len {
            let id = ConfigId(dec.get_usize()?);
            let runtime_seconds = dec.get_f64()?;
            let cost = dec.get_f64()?;
            let metrics_len = dec.get_usize()?;
            let mut metrics = Vec::with_capacity(metrics_len.min(1024));
            for _ in 0..metrics_len {
                metrics.push(dec.get_f64()?);
            }
            let bootstrap = dec.get_bool()?;
            explorations.push(Exploration {
                id,
                observation: Observation::new(runtime_seconds, cost).with_metrics(metrics),
                bootstrap,
            });
        }
        let receipts_len = dec.get_usize()?;
        let mut receipts = Vec::with_capacity(receipts_len.min(4096));
        for _ in 0..receipts_len {
            receipts.push(DecisionReceipt::decode_from(&mut dec)?);
        }
        let oracle_state = if dec.get_bool()? {
            Some(dec.get_bytes()?.to_vec())
        } else {
            None
        };
        let prior = if dec.get_bool()? {
            Some(crate::transfer::JobKnowledge::decode(dec.get_bytes()?)?)
        } else {
            None
        };
        let harvest_incumbent_key = dec.get_u64()?;
        let harvest_tail_key = dec.get_u64()?;
        if !dec.is_finished() {
            return Err(CodecError::Invalid("trailing bytes after the checkpoint"));
        }
        Ok(Self {
            seed,
            steps,
            attempts_used,
            pending_faults,
            pending_retries,
            rng_state,
            bootstrap_plan,
            tested,
            untested,
            budget_initial,
            budget_remaining,
            current,
            explorations,
            receipts,
            oracle_state,
            prior,
            harvest_incumbent_key,
            harvest_tail_key,
        })
    }
}

/// Where session checkpoints live, keyed by **session name** (submit two
/// sessions under one name to the same store and the later checkpoint wins —
/// name sessions uniquely when durability is on).
pub trait CheckpointStore: Send + Sync {
    /// Persists the latest checkpoint for a session, replacing any previous
    /// one.
    fn save(&self, name: &str, bytes: &[u8]);
    /// The latest checkpoint for a session, if one exists.
    fn load(&self, name: &str) -> Option<Vec<u8>>;
    /// Drops a session's checkpoint (called when the session finishes).
    fn remove(&self, name: &str);
}

/// An in-process checkpoint store. Process-lifetime durability only — the
/// store the kill-and-resume suites use to simulate restarts cheaply.
#[derive(Debug, Default)]
pub struct MemoryStore {
    entries: Mutex<HashMap<String, Vec<u8>>>,
}

impl MemoryStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of sessions with a stored checkpoint.
    #[must_use]
    pub fn len(&self) -> usize {
        crate::poison::lock(&self.entries).len()
    }

    /// True when nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl CheckpointStore for MemoryStore {
    fn save(&self, name: &str, bytes: &[u8]) {
        crate::poison::lock(&self.entries).insert(name.to_owned(), bytes.to_vec());
    }

    fn load(&self, name: &str) -> Option<Vec<u8>> {
        crate::poison::lock(&self.entries).get(name).cloned()
    }

    fn remove(&self, name: &str) {
        crate::poison::lock(&self.entries).remove(name);
    }
}

/// A directory-backed checkpoint store: one `<sanitized-name>-<hash>.ckpt`
/// file per session, written to a temp file and atomically renamed into
/// place, so a crash mid-write leaves the previous checkpoint intact.
#[derive(Debug)]
pub struct DirStore {
    dir: PathBuf,
}

impl DirStore {
    /// A store rooted at `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The file a session's checkpoint lives in. Session names are
    /// arbitrary strings; the filename keeps an alphanumeric prefix for
    /// legibility and appends an FNV-1a hash of the full name so distinct
    /// names never collide.
    #[must_use]
    pub fn path_for(&self, name: &str) -> PathBuf {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let prefix: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .take(48)
            .collect();
        self.dir.join(format!("{prefix}-{hash:016x}.ckpt"))
    }
}

impl CheckpointStore for DirStore {
    fn save(&self, name: &str, bytes: &[u8]) {
        let path = self.path_for(name);
        let temp = path.with_extension("ckpt.tmp");
        // Durability is best-effort by contract: the in-memory copy the
        // scheduler holds stays authoritative for the current process, so a
        // failed write degrades durability across restarts, nothing else.
        if std::fs::write(&temp, bytes).is_ok() {
            let _ = std::fs::rename(&temp, &path);
        }
    }

    fn load(&self, name: &str) -> Option<Vec<u8>> {
        std::fs::read(self.path_for(name)).ok()
    }

    fn remove(&self, name: &str) {
        let _ = std::fs::remove_file(self.path_for(name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> SessionCheckpoint {
        SessionCheckpoint {
            seed: 7,
            steps: 4,
            attempts_used: 1,
            pending_faults: 1,
            pending_retries: 1,
            rng_state: [1, 2, 3, 4],
            bootstrap_plan: vec![vec![0, 2], vec![1, 1]],
            tested: vec![TestedConfig {
                id: ConfigId(5),
                cost: 12.5,
                feasible: true,
            }],
            untested: vec![ConfigId(1), ConfigId(9), ConfigId(0)],
            budget_initial: 100.0,
            budget_remaining: 87.5,
            current: Some(ConfigId(5)),
            explorations: vec![Exploration {
                id: ConfigId(5),
                observation: Observation::new(12.5, 12.5).with_metrics(vec![0.25]),
                bootstrap: true,
            }],
            receipts: vec![DecisionReceipt {
                step: 0,
                chosen: ConfigId(5),
                bootstrap: true,
                gamma_size: 0,
                incumbent: Some(12.5),
                budget_before: 100.0,
                budget_after: 87.5,
                candidates: 0,
                pruned: 0,
                deep_pruned: 0,
                faults_observed: 0,
                retries_consumed: 0,
            }],
            oracle_state: Some(vec![9, 9, 9]),
            prior: None,
            harvest_incumbent_key: 0,
            harvest_tail_key: 0,
        }
    }

    #[test]
    fn checkpoint_codec_round_trips() {
        let original = snapshot();
        let bytes = original.encode();
        let back = SessionCheckpoint::decode(&bytes).unwrap();
        assert_eq!(back, original);
        assert_eq!(back.seed(), 7);
        assert_eq!(back.steps(), 4);
        assert_eq!(back.receipts().len(), 1);

        let mut no_oracle = snapshot();
        no_oracle.oracle_state = None;
        no_oracle.current = None;
        let back = SessionCheckpoint::decode(&no_oracle.encode()).unwrap();
        assert_eq!(back, no_oracle);
    }

    #[test]
    fn warm_checkpoint_round_trips_the_prior() {
        let mut warm = snapshot();
        warm.prior = Some(crate::transfer::JobKnowledge {
            job_key: "nightly".to_owned(),
            runs: 1,
            ensemble_seed: 7,
            last_incumbent_key: 3,
            last_tail_key: 11,
            observations: vec![crate::transfer::PriorObservation {
                id: ConfigId(2),
                runtime_seconds: 8.0,
                cost: 2.0,
                metrics: vec![1.5],
            }],
        });
        warm.harvest_incumbent_key = 41;
        warm.harvest_tail_key = 43;
        let back = SessionCheckpoint::decode(&warm.encode()).unwrap();
        assert_eq!(back, warm);
        // A corrupt nested prior fails the whole checkpoint cleanly.
        let good = warm.encode();
        for cut in 1..good.len() {
            assert!(SessionCheckpoint::decode(&good[..cut]).is_err());
        }
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        let bytes = snapshot().encode();
        for cut in 0..bytes.len() {
            assert!(
                SessionCheckpoint::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        // Trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(SessionCheckpoint::decode(&padded).is_err());
    }

    #[test]
    fn foreign_magic_and_versions_are_rejected() {
        let mut bytes = snapshot().encode();
        bytes[8] = b'X'; // first magic byte (after the length prefix)
        assert!(matches!(
            SessionCheckpoint::decode(&bytes),
            Err(CodecError::Invalid("not a Lynceus checkpoint"))
        ));
        let mut bytes = snapshot().encode();
        bytes[12] = 0xFF; // version field
        assert!(matches!(
            SessionCheckpoint::decode(&bytes),
            Err(CodecError::Invalid("unsupported checkpoint version"))
        ));
    }

    #[test]
    fn memory_store_saves_loads_and_removes() {
        let store = MemoryStore::new();
        assert!(store.is_empty());
        assert_eq!(store.load("a"), None);
        store.save("a", &[1, 2]);
        store.save("b", &[3]);
        store.save("a", &[9]); // latest wins
        assert_eq!(store.len(), 2);
        assert_eq!(store.load("a"), Some(vec![9]));
        store.remove("a");
        assert_eq!(store.load("a"), None);
        assert_eq!(store.load("b"), Some(vec![3]));
    }

    #[test]
    fn dir_store_round_trips_atomically() {
        let dir = std::env::temp_dir().join(format!("lynceus-ckpt-{}", std::process::id()));
        let store = DirStore::new(&dir).unwrap();
        assert_eq!(store.load("job/with:odd chars"), None);
        store.save("job/with:odd chars", &[5, 6, 7]);
        assert_eq!(store.load("job/with:odd chars"), Some(vec![5, 6, 7]));
        // Distinct names that sanitize identically stay distinct (hash
        // suffix).
        store.save("job_with_odd chars", &[8]);
        assert_eq!(store.load("job/with:odd chars"), Some(vec![5, 6, 7]));
        assert_eq!(store.load("job_with_odd chars"), Some(vec![8]));
        store.remove("job/with:odd chars");
        assert_eq!(store.load("job/with:odd chars"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
