//! The RND baseline: random exploration until the budget runs out.
//!
//! The paper uses random search "to establish a baseline on the complexity of
//! the optimization task" (Section 5.2): RND tries as many configurations as
//! possible given the budget and finally suggests the best configuration it
//! tried.

use crate::optimizer::{Driver, OptimizationReport, Optimizer, OptimizerSettings};
use crate::oracle::CostOracle;
use crate::switching::{FreeSwitching, SwitchingCost};
use lynceus_math::rng::SeededRng;

/// Random search over the candidate configurations.
pub struct RandomOptimizer {
    settings: OptimizerSettings,
    switching: Box<dyn SwitchingCost>,
}

impl RandomOptimizer {
    /// Creates the optimizer.
    ///
    /// # Panics
    ///
    /// Panics if the settings are invalid; use
    /// [`OptimizerSettings::validate`] to check them first.
    #[must_use]
    pub fn new(settings: OptimizerSettings) -> Self {
        settings.validate().expect("invalid optimizer settings");
        Self {
            settings,
            switching: Box::new(FreeSwitching),
        }
    }

    /// Uses a switching-cost model when charging profiling runs.
    #[must_use]
    pub fn with_switching_cost(mut self, switching: Box<dyn SwitchingCost>) -> Self {
        self.switching = switching;
        self
    }

    /// The settings in use.
    #[must_use]
    pub fn settings(&self) -> &OptimizerSettings {
        &self.settings
    }
}

impl Optimizer for RandomOptimizer {
    fn name(&self) -> &str {
        "RND"
    }

    fn optimize(&self, oracle: &dyn CostOracle, seed: u64) -> OptimizationReport {
        let mut rng = SeededRng::new(seed);
        let mut driver = Driver::new(oracle, &self.settings, seed);
        driver.bootstrap(&mut rng, self.switching.as_ref());
        while driver.state.budget().has_remaining() && !driver.state.untested().is_empty() {
            let id = *rng
                .choose(driver.state.untested())
                .expect("untested set is non-empty");
            driver.profile(id, false, self.switching.as_ref());
        }
        driver.finish(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TableOracle;
    use lynceus_space::SpaceBuilder;

    fn toy_oracle() -> TableOracle {
        let space = SpaceBuilder::new()
            .numeric("x", (0..10).map(f64::from))
            .numeric("y", (0..4).map(f64::from))
            .build();
        TableOracle::from_fn(space, 1.0, |f| 5.0 + f[0] * 2.0 + f[1])
    }

    fn settings(budget: f64) -> OptimizerSettings {
        OptimizerSettings {
            budget,
            tmax_seconds: 1_000.0,
            bootstrap_samples: Some(3),
            ..OptimizerSettings::default()
        }
    }

    #[test]
    fn explores_until_the_budget_is_exhausted() {
        let oracle = toy_oracle();
        let optimizer = RandomOptimizer::new(settings(100.0));
        let report = optimizer.optimize(&oracle, 5);
        assert!(report.num_explorations() > 3);
        assert!(report.budget_spent >= 100.0);
        assert!(report.feasible_found());
    }

    #[test]
    fn huge_budget_explores_the_whole_space_and_finds_the_optimum() {
        let oracle = toy_oracle();
        let optimizer = RandomOptimizer::new(settings(1e9));
        let report = optimizer.optimize(&oracle, 1);
        assert_eq!(report.num_explorations(), 40);
        assert_eq!(report.recommended_cost, Some(5.0));
    }

    #[test]
    fn never_profiles_the_same_configuration_twice() {
        let oracle = toy_oracle();
        let optimizer = RandomOptimizer::new(settings(500.0));
        let report = optimizer.optimize(&oracle, 9);
        let distinct: std::collections::HashSet<_> =
            report.explorations.iter().map(|e| e.id).collect();
        assert_eq!(distinct.len(), report.num_explorations());
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let oracle = toy_oracle();
        let optimizer = RandomOptimizer::new(settings(80.0));
        let a = optimizer.optimize(&oracle, 17);
        let b = optimizer.optimize(&oracle, 17);
        assert_eq!(a, b);
        let c = optimizer.optimize(&oracle, 18);
        assert_ne!(
            a.explorations.iter().map(|e| e.id).collect::<Vec<_>>(),
            c.explorations.iter().map(|e| e.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn name_is_rnd() {
        assert_eq!(RandomOptimizer::new(settings(1.0)).name(), "RND");
        assert_eq!(RandomOptimizer::new(settings(1.0)).settings().budget, 1.0);
    }
}
