//! The optimizer state `Σ = ⟨S, T, β, χ⟩` (paper Section 4.3).

use crate::budget::Budget;
use lynceus_learners::TrainingSet;
use lynceus_space::{ConfigId, ConfigSpace};
use serde::{Deserialize, Serialize};

/// One profiled (or speculated) configuration in the training set `S`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestedConfig {
    /// Which configuration was run.
    pub id: ConfigId,
    /// Its (measured or speculated) cost in dollars.
    pub cost: f64,
    /// Whether it satisfies the runtime constraint `T(x) ≤ Tmax`.
    pub feasible: bool,
}

/// The optimizer state: the training set `S`, the untested configurations
/// `T`, the remaining budget `β` and the currently deployed configuration
/// `χ`.
///
/// The same structure is used for the real optimization loop and for the
/// speculative states built while simulating exploration paths; the only
/// difference is whether [`SearchState::record`] is fed measured or
/// Gauss–Hermite-speculated costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchState {
    tested: Vec<TestedConfig>,
    untested: Vec<ConfigId>,
    budget: Budget,
    current: Option<ConfigId>,
}

impl SearchState {
    /// Creates the initial state: nothing tested, every candidate untested,
    /// the full budget available, no configuration deployed.
    #[must_use]
    pub fn new(candidates: Vec<ConfigId>, budget: Budget) -> Self {
        Self {
            tested: Vec::new(),
            untested: candidates,
            budget,
            current: None,
        }
    }

    /// Rebuilds a state from checkpointed parts, verbatim. The untested
    /// list must be the checkpointed *live order* — [`SearchState::record`]
    /// swap-removes, so the order is history-dependent and tie-breaks
    /// acquisition scores; reconstructing it any other way would break
    /// bit-identical replay.
    #[must_use]
    pub(crate) fn from_parts(
        tested: Vec<TestedConfig>,
        untested: Vec<ConfigId>,
        budget: Budget,
        current: Option<ConfigId>,
    ) -> Self {
        Self {
            tested,
            untested,
            budget,
            current,
        }
    }

    /// The profiled configurations (the training set `S`).
    #[must_use]
    pub fn tested(&self) -> &[TestedConfig] {
        &self.tested
    }

    /// The configurations not yet profiled (`T`).
    #[must_use]
    pub fn untested(&self) -> &[ConfigId] {
        &self.untested
    }

    /// The remaining budget `β`.
    #[must_use]
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The configuration currently deployed (`χ`), if any.
    #[must_use]
    pub fn current(&self) -> Option<ConfigId> {
        self.current
    }

    /// True if the configuration has already been profiled.
    #[must_use]
    pub fn is_tested(&self, id: ConfigId) -> bool {
        self.tested.iter().any(|t| t.id == id)
    }

    /// Records the outcome of running (or simulating) the job on `id`:
    /// appends it to `S`, removes it from `T`, charges the budget and marks
    /// it as the deployed configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not in the untested set.
    pub fn record(&mut self, id: ConfigId, cost: f64, feasible: bool) {
        let position = self
            .untested
            .iter()
            .position(|&u| u == id)
            .expect("configuration was already tested or is not a candidate");
        self.untested.swap_remove(position);
        self.tested.push(TestedConfig { id, cost, feasible });
        self.budget.charge(cost);
        self.current = Some(id);
    }

    /// Replays a **prior run's** observation into `Σ`: exactly
    /// [`SearchState::record`] minus the budget charge — the measurement was
    /// paid for by the run that made it, so a recurring job's next run gets
    /// the training point for free. Used only by the cross-run knowledge
    /// layer ([`crate::transfer`]) before the session's first own step.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not in the untested set.
    pub(crate) fn replay(&mut self, id: ConfigId, cost: f64, feasible: bool) {
        let position = self
            .untested
            .iter()
            .position(|&u| u == id)
            .expect("replayed configuration was already tested or is not a candidate");
        self.untested.swap_remove(position);
        self.tested.push(TestedConfig { id, cost, feasible });
        self.current = Some(id);
    }

    /// Returns a copy of the state in which the job was (speculatively) run
    /// on `id` with the given cost: the speculative counterpart of
    /// [`SearchState::record`], used by the exploration-path simulation.
    ///
    /// Unlike [`SearchState::record`] (which swap-removes for `O(1)` cost on
    /// the real loop), speculation removes `id` from the untested set
    /// *order-preservingly*: the untested order of a speculated state is the
    /// base order with the speculated configurations filtered out, which is
    /// exactly how [`SpeculativeCursor`] iterates. Keeping both
    /// representations in the same order makes the materialized and the
    /// overlay-based speculation paths bit-identical (ties in acquisition
    /// scores are broken by untested order).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not in the untested set.
    #[must_use]
    pub fn speculate(&self, id: ConfigId, cost: f64, feasible: bool) -> Self {
        let mut next = self.clone();
        let position = next
            .untested
            .iter()
            .position(|&u| u == id)
            .expect("configuration was already tested or is not a candidate");
        next.untested.remove(position);
        next.tested.push(TestedConfig { id, cost, feasible });
        next.budget.charge(cost);
        next.current = Some(id);
        next
    }

    /// Charges an additional amount (e.g. a cluster switching cost) against
    /// the budget without adding a training observation.
    ///
    /// # Panics
    ///
    /// Panics if the amount is negative or not finite.
    pub fn charge_extra(&mut self, amount: f64) {
        self.budget.charge(amount);
    }

    /// `(cost, feasible)` pairs of the training set, in profiling order
    /// (the shape consumed by [`crate::acquisition::incumbent_cost`]).
    #[must_use]
    pub fn profiled_pairs(&self) -> Vec<(f64, bool)> {
        self.tested.iter().map(|t| (t.cost, t.feasible)).collect()
    }

    /// The cheapest feasible configuration profiled so far, if any.
    #[must_use]
    pub fn best_feasible(&self) -> Option<&TestedConfig> {
        self.tested
            .iter()
            .filter(|t| t.feasible)
            .min_by(|a, b| a.cost.total_cmp(&b.cost))
    }

    /// Writes the inverse of the untested list into `out` (resized to
    /// `universe`, the number of grid configurations): `out[id.index()]` is
    /// the position of `id` in [`SearchState::untested`], or
    /// [`SearchState::NOT_UNTESTED`] for tested / non-candidate ids.
    ///
    /// The speculation engine rebuilds this map once per decision and then
    /// maintains per-path "speculated" membership as a dense bitmask indexed
    /// by position — updated in `O(1)` on every cursor push/pop — instead of
    /// re-scanning the speculation stack for every candidate of every
    /// (re-)filtered `Γ`.
    pub fn untested_positions(&self, universe: usize, out: &mut Vec<u32>) {
        out.clear();
        out.resize(universe, Self::NOT_UNTESTED);
        for (position, id) in self.untested.iter().enumerate() {
            out[id.index()] =
                u32::try_from(position).expect("untested sets stay far below 2^32 entries");
        }
    }

    /// Sentinel of [`SearchState::untested_positions`] for ids that are not
    /// in the untested set.
    pub const NOT_UNTESTED: u32 = u32::MAX;

    /// Builds the surrogate training set (configuration features → cost) for
    /// the given space.
    #[must_use]
    pub fn training_set(&self, space: &ConfigSpace) -> TrainingSet {
        let mut data = TrainingSet::new(space.dims());
        for t in &self.tested {
            data.push(space.features_of(t.id), t.cost);
        }
        data
    }
}

/// A stack of speculated observations layered over a base [`SearchState`]
/// without copying it.
///
/// [`SearchState::speculate`] clones the full state — `O(|untested|)` per
/// branch, and the untested set is the whole configuration grid. The
/// exploration-path simulation instead keeps **one** cursor per path and
/// pushes/pops speculated samples as it walks the Gauss–Hermite tree, so a
/// branch costs `O(depth)` bookkeeping. All views (`untested`, profiled
/// pairs, remaining budget, deployed configuration) match the materialized
/// state bit for bit:
///
/// * the untested order is the base order with speculated ids filtered out
///   (matching [`SearchState::speculate`]'s order-preserving removal);
/// * the remaining budget replays the same sequence of `remaining - cost`
///   subtractions, and popping restores the *saved* previous value rather
///   than re-adding (floating-point subtraction is not invertible).
#[derive(Debug, Clone)]
pub struct SpeculativeCursor<'a> {
    base: &'a SearchState,
    stack: Vec<TestedConfig>,
    /// `remaining_before[d]` is the budget remaining before frame `d` was
    /// pushed, so popping restores it exactly.
    remaining_before: Vec<f64>,
    remaining: f64,
}

impl<'a> SpeculativeCursor<'a> {
    /// Creates a cursor with no speculated observations.
    #[must_use]
    pub fn new(base: &'a SearchState) -> Self {
        Self {
            base,
            stack: Vec::new(),
            remaining_before: Vec::new(),
            remaining: base.budget().remaining(),
        }
    }

    /// The base state the cursor overlays.
    #[must_use]
    pub fn base(&self) -> &SearchState {
        self.base
    }

    /// Number of speculated observations currently on the stack.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Pushes a speculated observation: the cursor now describes the state
    /// after (speculatively) running `id` at the given cost.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `id` is already tested or speculated.
    pub fn push(&mut self, id: ConfigId, cost: f64, feasible: bool) {
        debug_assert!(
            !self.is_tested(id),
            "configuration was already tested or speculated"
        );
        self.remaining_before.push(self.remaining);
        self.remaining -= cost;
        self.stack.push(TestedConfig { id, cost, feasible });
    }

    /// Charges an additional amount (e.g. a speculated switching cost)
    /// against the current frame's budget, mirroring
    /// [`SearchState::charge_extra`] on a materialized speculation: the
    /// charge is a separate subtraction after the frame's cost (the same
    /// floating-point operation order as the real driver), and popping the
    /// frame restores the pre-push budget, extra charges included.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if no frame has been pushed (the base state's
    /// budget must not be modified through the cursor), or if the amount is
    /// not a finite non-negative value — a non-finite charge would collapse
    /// the speculated β to `-inf`/NaN and contaminate every score computed
    /// from it; callers saturate model outputs before charging (see the
    /// speculation sites in [`crate::lynceus`]).
    pub fn charge_extra(&mut self, amount: f64) {
        debug_assert!(
            !self.stack.is_empty(),
            "extra charges need a speculation frame to be restored with"
        );
        debug_assert!(
            amount.is_finite() && amount >= 0.0,
            "speculated charges must be finite and non-negative, got {amount}"
        );
        self.remaining -= amount;
    }

    /// Pops the most recent speculated observation, restoring the previous
    /// budget exactly.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty.
    pub fn pop(&mut self) {
        self.stack.pop().expect("pop on an empty speculation stack");
        self.remaining = self
            .remaining_before
            .pop()
            .expect("budget stack out of sync");
    }

    /// The remaining budget `β` of the speculated state.
    #[must_use]
    pub fn remaining_budget(&self) -> f64 {
        self.remaining
    }

    /// The deployed configuration `χ` of the speculated state.
    #[must_use]
    pub fn current(&self) -> Option<ConfigId> {
        self.stack
            .last()
            .map_or_else(|| self.base.current(), |t| Some(t.id))
    }

    /// True if `id` is tested in the base state or speculated on the stack.
    #[must_use]
    pub fn is_tested(&self, id: ConfigId) -> bool {
        self.stack.iter().any(|t| t.id == id) || self.base.is_tested(id)
    }

    /// Iterates the untested configurations of the speculated state, in base
    /// order with speculated ids filtered out.
    pub fn untested(&self) -> impl Iterator<Item = ConfigId> + '_ {
        self.base
            .untested()
            .iter()
            .copied()
            .filter(move |&id| !self.stack.iter().any(|t| t.id == id))
    }

    /// Writes the `(cost, feasible)` pairs of the speculated state into
    /// `out` (cleared first): base profiling order, then stack order —
    /// matching [`SearchState::profiled_pairs`] on the materialized state.
    pub fn profiled_pairs_into(&self, out: &mut Vec<(f64, bool)>) {
        out.clear();
        out.extend(self.base.tested().iter().map(|t| (t.cost, t.feasible)));
        out.extend(self.stack.iter().map(|t| (t.cost, t.feasible)));
    }

    /// The speculated observations currently on the stack, oldest first.
    #[must_use]
    pub fn speculated(&self) -> &[TestedConfig] {
        &self.stack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lynceus_space::SpaceBuilder;

    fn candidates(n: usize) -> Vec<ConfigId> {
        (0..n).map(ConfigId).collect()
    }

    #[test]
    fn recording_moves_configs_from_untested_to_tested() {
        let mut state = SearchState::new(candidates(5), Budget::new(100.0));
        assert_eq!(state.untested().len(), 5);
        state.record(ConfigId(2), 10.0, true);
        assert_eq!(state.untested().len(), 4);
        assert_eq!(state.tested().len(), 1);
        assert!(state.is_tested(ConfigId(2)));
        assert!(!state.is_tested(ConfigId(3)));
        assert_eq!(state.current(), Some(ConfigId(2)));
        assert!((state.budget().remaining() - 90.0).abs() < 1e-12);
    }

    #[test]
    fn speculation_does_not_mutate_the_original_state() {
        let state = SearchState::new(candidates(4), Budget::new(50.0));
        let speculated = state.speculate(ConfigId(1), 5.0, false);
        assert_eq!(state.tested().len(), 0);
        assert_eq!(speculated.tested().len(), 1);
        assert!((speculated.budget().remaining() - 45.0).abs() < 1e-12);
        assert!((state.budget().remaining() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn best_feasible_ignores_infeasible_configurations() {
        let mut state = SearchState::new(candidates(5), Budget::new(100.0));
        state.record(ConfigId(0), 2.0, false);
        state.record(ConfigId(1), 8.0, true);
        state.record(ConfigId(2), 5.0, true);
        let best = state.best_feasible().unwrap();
        assert_eq!(best.id, ConfigId(2));
        assert_eq!(best.cost, 5.0);
        assert_eq!(
            state.profiled_pairs(),
            vec![(2.0, false), (8.0, true), (5.0, true)]
        );
    }

    #[test]
    fn best_feasible_is_none_when_everything_violates_the_constraint() {
        let mut state = SearchState::new(candidates(2), Budget::new(10.0));
        state.record(ConfigId(0), 1.0, false);
        assert!(state.best_feasible().is_none());
    }

    #[test]
    fn training_set_uses_space_features() {
        let space = SpaceBuilder::new()
            .numeric("a", [1.0, 2.0])
            .numeric("b", [10.0, 20.0])
            .build();
        let mut state = SearchState::new(space.ids().collect(), Budget::new(10.0));
        state.record(ConfigId(3), 4.0, true);
        let data = state.training_set(&space);
        assert_eq!(data.len(), 1);
        assert_eq!(data.observation(0), (&[2.0, 20.0][..], 4.0));
    }

    #[test]
    #[should_panic(expected = "already tested or is not a candidate")]
    fn recording_the_same_configuration_twice_panics() {
        let mut state = SearchState::new(candidates(3), Budget::new(10.0));
        state.record(ConfigId(0), 1.0, true);
        state.record(ConfigId(0), 1.0, true);
    }

    #[test]
    fn speculation_preserves_the_untested_order() {
        let state = SearchState::new(candidates(5), Budget::new(50.0));
        let speculated = state.speculate(ConfigId(2), 5.0, true);
        assert_eq!(
            speculated.untested(),
            &[ConfigId(0), ConfigId(1), ConfigId(3), ConfigId(4)]
        );
    }

    #[test]
    fn untested_positions_invert_the_untested_list() {
        let mut state = SearchState::new(candidates(6), Budget::new(100.0));
        state.record(ConfigId(1), 3.0, true);
        state.record(ConfigId(4), 3.0, true);
        let mut positions = Vec::new();
        state.untested_positions(8, &mut positions);
        assert_eq!(positions.len(), 8);
        for (position, &id) in state.untested().iter().enumerate() {
            assert_eq!(positions[id.index()], position as u32);
        }
        // Tested ids and ids outside the candidate set map to the sentinel.
        for index in [1usize, 4, 6, 7] {
            assert_eq!(positions[index], SearchState::NOT_UNTESTED);
        }
        // Reuse keeps the buffer consistent after the set shrinks.
        state.record(ConfigId(0), 1.0, true);
        state.untested_positions(8, &mut positions);
        assert_eq!(positions[0], SearchState::NOT_UNTESTED);
    }

    #[test]
    fn cursor_views_match_the_materialized_speculation() {
        let mut state = SearchState::new(candidates(6), Budget::new(100.0));
        state.record(ConfigId(5), 10.0, false);

        let materialized =
            state
                .speculate(ConfigId(1), 7.0, true)
                .speculate(ConfigId(3), 2.5, false);

        let mut cursor = SpeculativeCursor::new(&state);
        cursor.push(ConfigId(1), 7.0, true);
        cursor.push(ConfigId(3), 2.5, false);

        assert_eq!(cursor.depth(), 2);
        assert_eq!(
            cursor.untested().collect::<Vec<_>>(),
            materialized.untested().to_vec()
        );
        assert_eq!(cursor.remaining_budget(), materialized.budget().remaining());
        assert_eq!(cursor.current(), materialized.current());
        assert!(cursor.is_tested(ConfigId(1)));
        assert!(cursor.is_tested(ConfigId(5)));
        assert!(!cursor.is_tested(ConfigId(0)));
        let mut pairs = Vec::new();
        cursor.profiled_pairs_into(&mut pairs);
        assert_eq!(pairs, materialized.profiled_pairs());
        assert_eq!(cursor.speculated().len(), 2);
        assert_eq!(cursor.base().tested().len(), 1);
    }

    #[test]
    fn cursor_charge_extra_matches_the_materialized_state_and_pops_cleanly() {
        let mut state = SearchState::new(candidates(5), Budget::new(100.0));
        state.record(ConfigId(4), 10.0, true);

        // Materialized: speculate then charge a switching cost, two separate
        // subtractions — the cursor must replay the identical sequence.
        let mut materialized = state.speculate(ConfigId(1), 0.3, true);
        materialized.charge_extra(0.7);

        let mut cursor = SpeculativeCursor::new(&state);
        let before = cursor.remaining_budget();
        cursor.push(ConfigId(1), 0.3, true);
        cursor.charge_extra(0.7);
        assert_eq!(
            cursor.remaining_budget().to_bits(),
            materialized.budget().remaining().to_bits()
        );
        cursor.pop();
        assert_eq!(cursor.remaining_budget().to_bits(), before.to_bits());
    }

    #[test]
    fn cursor_pop_restores_the_previous_budget_exactly() {
        let state = SearchState::new(candidates(4), Budget::new(1.0));
        let mut cursor = SpeculativeCursor::new(&state);
        let before = cursor.remaining_budget();
        // 0.1 is not representable in binary floating point: subtracting and
        // re-adding would not round-trip, the saved-value restore must.
        cursor.push(ConfigId(0), 0.1, true);
        cursor.push(ConfigId(1), 0.3, true);
        cursor.pop();
        cursor.pop();
        assert_eq!(cursor.remaining_budget().to_bits(), before.to_bits());
        assert_eq!(cursor.depth(), 0);
        assert_eq!(cursor.current(), None);
    }

    #[test]
    #[should_panic(expected = "empty speculation stack")]
    fn cursor_pop_on_empty_stack_panics() {
        let state = SearchState::new(candidates(2), Budget::new(1.0));
        let mut cursor = SpeculativeCursor::new(&state);
        cursor.pop();
    }
}
