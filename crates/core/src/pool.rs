//! A small work-stealing fork-join pool with deterministic reduction order.
//!
//! The speculation engine fans out over `candidates × Gauss–Hermite nodes`
//! branch evaluations whose costs vary wildly (a branch dies immediately when
//! its speculated budget is exhausted, or recurses through the whole
//! lookahead). Fixed chunking — what the previous `crossbeam`-scoped
//! implementation did — leaves workers idle behind the unluckiest chunk;
//! here each worker owns a deque of task indices and steals from the back of
//! a sibling's deque when its own runs dry.
//!
//! Results are written back *by task index*, so the output order (and
//! therefore any subsequent reduction) is independent of the stealing
//! schedule: for a pure task function the result is bit-identical to the
//! sequential loop, which is what keeps optimizer runs reproducible for a
//! fixed seed regardless of thread count.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};

/// Upper bound on workers: one per available CPU.
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// A shared worker-thread budget for concurrent batch submissions and
/// stepping sessions.
///
/// The free functions below spawn up to one worker per CPU *per call*: fine
/// for a single optimization, but N concurrent tuning sessions would
/// oversubscribe the machine N-fold. A `Pool` fixes a global capacity of
/// worker *slots* and arbitrates them at two levels:
///
/// * **Per stepping session** ([`Pool::acquire`]): a scheduler lane blocks
///   until one slot is free and holds it for the duration of one session
///   step — the lane's own thread is the computing thread the slot pays
///   for. This is what lets M concurrent decisions share N workers: at most
///   `capacity` sessions compute at once.
/// * **Per batch fan-out** ([`Pool::run_indexed_with`] and friends): the
///   calling thread always participates as worker 0 and *extra* workers are
///   taken non-blockingly — whatever of the remaining budget is free at
///   submission time, possibly none. A batch therefore never waits for
///   slots, which makes the two-level arbitration deadlock-free by
///   construction: the only blocking acquisition ([`Pool::acquire`]) is
///   taken while holding no other slot, and every batch grant is returned
///   when its fork-join completes.
///
/// The hard cap on computing threads therefore comes from the blocking
/// slot leases: callers that hold one slot per computing thread (as the
/// service's scheduler lanes do) are collectively bounded by `capacity`.
/// For a bare batch submission the capacity bounds only the *extra*
/// workers — the calling thread itself is admitted unconditionally, so K
/// independent threads driving standalone optimizers through one busy pool
/// compute as K callers plus at most `capacity` leased workers. A caller
/// that wants the hard cap without the service takes [`Pool::acquire`]
/// around its own compute, exactly like a lane.
///
/// Because [`run_indexed_with`] writes results back by task index, the
/// output of a batch is independent of how many workers it was granted — a
/// session multiplexed through a busy shared pool produces bit-identical
/// results to the same session running alone.
#[derive(Debug)]
pub struct Pool {
    capacity: usize,
    available: Mutex<usize>,
    freed: Condvar,
}

/// One worker slot held out of a [`Pool`], released on drop. The scheduler
/// of [`crate::service::TuningService`] holds one per stepping session.
#[derive(Debug)]
pub struct PoolSlot<'a> {
    pool: &'a Pool,
}

impl Drop for PoolSlot<'_> {
    fn drop(&mut self) {
        self.pool.release(1);
    }
}

impl Pool {
    /// Creates a pool with a fixed worker-thread capacity (clamped to at
    /// least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            available: Mutex::new(capacity),
            freed: Condvar::new(),
        }
    }

    /// A pool sized to the machine: one worker slot per available CPU.
    #[must_use]
    pub fn with_default_capacity() -> Self {
        Self::new(default_threads())
    }

    /// The total worker-thread budget.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Blocks until one worker slot is free and takes it. The returned guard
    /// releases the slot on drop.
    ///
    /// This is the per-stepping-session lease of the two-level arbitration:
    /// hold a slot while a session computes on the calling thread, so at
    /// most `capacity` sessions step at once. Never call it while already
    /// holding a slot from the same pool — the batch fan-outs are
    /// non-blocking precisely so that this is the only acquisition that can
    /// wait.
    #[must_use]
    pub fn acquire(&self) -> PoolSlot<'_> {
        let mut available = crate::poison::lock(&self.available);
        while *available == 0 {
            available = crate::poison::wait(&self.freed, available);
        }
        *available -= 1;
        PoolSlot { pool: self }
    }

    /// Takes up to `want` slots without blocking (possibly zero): the extra
    /// workers of a batch fan-out beyond the calling thread.
    fn try_extra(&self, want: usize) -> usize {
        let mut available = crate::poison::lock(&self.available);
        let granted = want.min(*available);
        *available -= granted;
        granted
    }

    /// Returns slots to the budget and wakes blocked [`Pool::acquire`]s.
    fn release(&self, granted: usize) {
        if granted == 0 {
            return;
        }
        let mut available = crate::poison::lock(&self.available);
        *available += granted;
        self.freed.notify_all();
    }

    /// [`run_indexed`] through the shared budget: leases up to `threads`
    /// worker slots for the duration of the batch.
    pub fn run_indexed<R, F>(&self, n: usize, threads: usize, task: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.run_indexed_with(n, threads, || (), |(), i| task(i))
    }

    /// [`run_indexed_with`] through the shared budget: the calling thread
    /// runs as worker 0 and up to `threads - 1` extra worker slots are taken
    /// non-blockingly (a fully busy pool grants none and the batch runs
    /// inline). Results are bit-identical for any grant, so contention
    /// affects only wall-clock time.
    pub fn run_indexed_with<S, R, I, F>(&self, n: usize, threads: usize, init: I, task: F) -> Vec<R>
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> R + Sync,
    {
        self.leased(n, threads, |granted| {
            run_indexed_with(n, granted, &init, &task)
        })
    }

    /// [`run_order_with`] through the shared budget: like
    /// [`Pool::run_indexed_with`], but tasks are *dispatched* in the order
    /// given by `order` while results still come back in index order. The
    /// branch-and-bound speculation engine uses it to expand candidates
    /// best-bound-first so its shared incumbent tightens as early as
    /// possible.
    pub fn run_order_with<S, R, I, F>(
        &self,
        n: usize,
        threads: usize,
        order: &[usize],
        init: I,
        task: F,
    ) -> Vec<R>
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> R + Sync,
    {
        self.leased(n, threads, |granted| {
            run_order_with(n, granted, order, &init, &task)
        })
    }

    /// Runs `batch` with the calling thread plus a non-blocking grant of up
    /// to `threads - 1` extra slots (inline for trivial batches), returning
    /// the slots before propagating any panic.
    fn leased<R>(&self, n: usize, threads: usize, batch: impl FnOnce(usize) -> R) -> R {
        let want = threads.min(default_threads()).min(n.max(1));
        if want <= 1 || n <= 1 {
            // Trivial batches run inline without touching the shared budget:
            // the calling thread is always available.
            return batch(1);
        }
        let extra = self.try_extra(want - 1);
        // The fork-join below must not panic past the release; results are
        // collected first and the slots returned before propagating.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| batch(1 + extra)));
        self.release(extra);
        match outcome {
            Ok(results) => results,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

/// Applies `task` to every index in `0..n` on a work-stealing pool of at most
/// `threads` workers (capped at the available parallelism and at `n`), and
/// returns the results in index order.
///
/// `threads <= 1` (or a trivial `n`) runs inline on the calling thread. The
/// reduction order seen by the caller is always `0, 1, …, n-1`.
///
/// # Panics
///
/// Propagates panics from `task`.
pub fn run_indexed<R, F>(n: usize, threads: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run_indexed_with(n, threads, || (), |(), i| task(i))
}

/// Like [`run_indexed`], but each worker lazily creates one reusable state
/// value with `init` and threads it through its tasks — the map-with-scratch
/// pattern. The speculation engine uses it to reuse per-branch evaluation
/// buffers across every branch a worker processes instead of reallocating
/// them per task.
///
/// The state must not influence results (it is a scratch space, not an
/// accumulator), otherwise the output would depend on the stealing schedule.
///
/// # Panics
///
/// Propagates panics from `init` and `task`.
pub fn run_indexed_with<S, R, I, F>(n: usize, threads: usize, init: I, task: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let workers = threads.min(default_threads()).min(n);
    if workers <= 1 || n <= 1 {
        let mut state = init();
        return (0..n).map(|i| task(&mut state, i)).collect();
    }

    // Each worker starts with a contiguous slice of the index space and
    // steals from the back of a sibling's deque once its own is empty.
    let chunk = n.div_ceil(workers);
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w * chunk..((w + 1) * chunk).min(n)).collect()))
        .collect();
    fork_join(n, queues, init, task)
}

/// Like [`run_indexed_with`], but tasks are *dispatched* in the order given
/// by `order` (a permutation of `0..n`) while results still come back in
/// index order `0, 1, …, n-1`.
///
/// Priority dispatch matters for batches whose tasks share monotone state —
/// the branch-and-bound speculation engine publishes its incumbent score
/// through an atomic cell, and expanding the highest-bound candidates first
/// maximizes how much of the remaining batch the incumbent can prune. The
/// order affects *scheduling only*: for tasks whose results do not depend on
/// execution order the output is bit-identical to [`run_indexed_with`], and
/// the multi-worker dispatch interleaves `order` round-robin across the
/// worker deques so the globally best-ranked tasks start first no matter
/// which worker picks them up.
///
/// # Panics
///
/// Panics if `order` is not `n` elements long (a permutation is the caller's
/// responsibility; a repeated index would make a task run twice and another
/// not at all) and propagates panics from `init` and `task`.
pub fn run_order_with<S, R, I, F>(
    n: usize,
    threads: usize,
    order: &[usize],
    init: I,
    task: F,
) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    assert_eq!(order.len(), n, "dispatch order must cover every task index");
    let workers = threads.min(default_threads()).min(n);
    if workers <= 1 || n <= 1 {
        let mut state = init();
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for &index in order {
            results[index] = Some(task(&mut state, index));
        }
        return results
            .into_iter()
            // lint: allow(no-panic) -- slot invariant: the loop above fills every index; a None is a dispatch bug worth a loud stop
            .map(|r| r.expect("every task index produces exactly one result"))
            .collect();
    }

    // Deal the ranked order round-robin: worker `w` owns ranks `w`,
    // `w + workers`, `w + 2·workers`, … so the front of every deque holds
    // the best-ranked task not yet started.
    let mut hands: Vec<VecDeque<usize>> = (0..workers)
        .map(|w| VecDeque::with_capacity(n.div_ceil(workers) + usize::from(w == 0)))
        .collect();
    for (rank, &index) in order.iter().enumerate() {
        hands[rank % workers].push_back(index);
    }
    let queues: Vec<Mutex<VecDeque<usize>>> = hands.into_iter().map(Mutex::new).collect();
    fork_join(n, queues, init, task)
}

/// The shared fork-join core: runs every queued task index on one worker per
/// queue (with stealing) and collects the results in index order. The
/// calling thread participates as worker 0 — only `queues.len() - 1` threads
/// are spawned — so a batch granted no extra pool slots degrades gracefully
/// to inline execution instead of blocking for a worker.
fn fork_join<S, R, I, F>(n: usize, queues: Vec<Mutex<VecDeque<usize>>>, init: I, task: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let workers = queues.len();
    let (sender, receiver) = mpsc::channel::<(usize, R)>();
    let worker_loop = |me: usize, sender: &mpsc::Sender<(usize, R)>| {
        let mut state = init();
        loop {
            let index = pop_own(&queues[me]).or_else(|| steal(&queues, me));
            let Some(index) = index else { break };
            // Send failures are impossible: the receiver outlives every
            // sender. Ignore the result to keep the worker loop infallible.
            let _ = sender.send((index, task(&mut state, index)));
        }
    };

    std::thread::scope(|scope| {
        for me in 1..workers {
            let worker_loop = &worker_loop;
            let sender = sender.clone();
            scope.spawn(move || worker_loop(me, &sender));
        }
        worker_loop(0, &sender);
        drop(sender);

        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (index, result) in receiver {
            results[index] = Some(result);
        }
        results
            .into_iter()
            // lint: allow(no-panic) -- slot invariant: the channel delivers one result per dispatched index; a None is a pool bug worth a loud stop
            .map(|r| r.expect("every task index produces exactly one result"))
            .collect()
    })
}

/// Applies `task` to every item of `items` with work stealing; results come
/// back in item order. Convenience wrapper over [`run_indexed`].
pub fn map_slice<T, R, F>(items: &[T], threads: usize, task: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_indexed(items.len(), threads, |i| task(&items[i]))
}

/// Pops the next task of the worker's own deque (front, cache-friendly).
fn pop_own(queue: &Mutex<VecDeque<usize>>) -> Option<usize> {
    crate::poison::lock(queue).pop_front()
}

/// Steals one task from the back of the first non-empty sibling deque,
/// scanning round-robin from the thief's position.
fn steal(queues: &[Mutex<VecDeque<usize>>], thief: usize) -> Option<usize> {
    let n = queues.len();
    (1..n)
        .map(|offset| (thief + offset) % n)
        .find_map(|victim| crate::poison::lock(&queues[victim]).pop_back())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_indexed(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn matches_the_sequential_path_for_uneven_workloads() {
        let work = |i: usize| -> u64 {
            // Wildly uneven task costs to force stealing.
            let spins = if i.is_multiple_of(7) { 20_000 } else { 10 };
            (0..spins).fold(i as u64, |acc, j| acc.wrapping_mul(31).wrapping_add(j))
        };
        let parallel = run_indexed(200, 8, work);
        let sequential = run_indexed(200, 1, work);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_indexed(500, 4, |i| {
            // ordering: Relaxed — a pure execution counter; the batch join
            // (scope exit) publishes it before the assertion reads it.
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        // ordering: Relaxed — read after the batch joined; see above.
        assert_eq!(counter.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        assert_eq!(run_indexed(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn map_slice_preserves_item_order() {
        let items: Vec<i64> = (0..64).map(|i| i - 32).collect();
        let doubled = map_slice(&items, 4, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn shared_pool_matches_the_free_functions() {
        let pool = Pool::new(4);
        assert_eq!(pool.capacity(), 4);
        let work = |i: usize| -> u64 {
            let spins = if i.is_multiple_of(5) { 5_000 } else { 3 };
            (0..spins).fold(i as u64, |acc, j| acc.wrapping_mul(31).wrapping_add(j))
        };
        let via_pool = pool.run_indexed(128, 8, work);
        let direct = run_indexed(128, 8, work);
        assert_eq!(via_pool, direct);
        // The budget is fully restored once the batch completes.
        assert_eq!(*pool.available.lock().unwrap(), 4);
    }

    #[test]
    fn concurrent_submissions_complete_correctly_and_restore_the_budget() {
        // Batch fan-outs are non-blocking: concurrent submitters race for
        // the extra-worker budget, every batch completes with index-ordered
        // results regardless of what it was granted, and the budget is
        // whole again afterwards. (The hard cap on computing threads is the
        // slot lease, exercised by the `held_slots_*` and `acquire_*`
        // tests, not the batch path.)
        let pool = Pool::new(2);
        let expected: Vec<usize> = (0..64).map(|i| i * 3).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..6)
                .map(|_| scope.spawn(|| pool.run_indexed(64, 8, |i| i * 3)))
                .collect();
            for handle in handles {
                assert_eq!(handle.join().unwrap(), expected);
            }
        });
        assert_eq!(*pool.available.lock().unwrap(), 2);
    }

    #[test]
    fn shared_pool_capacity_is_clamped_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.capacity(), 1);
        assert_eq!(
            pool.run_indexed(10, 4, |i| i + 1),
            run_indexed(10, 1, |i| i + 1)
        );
        assert!(Pool::with_default_capacity().capacity() >= 1);
    }

    #[test]
    fn ordered_dispatch_returns_index_ordered_results() {
        let work = |i: usize| -> u64 {
            let spins = if i.is_multiple_of(9) { 10_000 } else { 5 };
            (0..spins).fold(i as u64, |acc, j| acc.wrapping_mul(31).wrapping_add(j))
        };
        let n = 120;
        // Reverse-priority order: the last index is dispatched first.
        let order: Vec<usize> = (0..n).rev().collect();
        let reference = run_indexed(n, 1, work);
        for threads in [1, 4, 8] {
            let out = run_order_with(n, threads, &order, || (), |(), i| work(i));
            assert_eq!(
                out, reference,
                "ordered dispatch diverged at {threads} threads"
            );
        }
        let via_pool = Pool::new(3).run_order_with(n, 8, &order, || (), |(), i| work(i));
        assert_eq!(via_pool, reference);
    }

    #[test]
    fn ordered_dispatch_runs_high_priority_tasks_first_sequentially() {
        // Single-threaded, the dispatch order IS the execution order: record
        // it through the scratch state and check against the given ranking.
        let n = 16;
        let order: Vec<usize> = (0..n).rev().collect();
        let executed = Mutex::new(Vec::new());
        let _ = run_order_with(
            n,
            1,
            &order,
            || (),
            |(), i| executed.lock().unwrap().push(i),
        );
        assert_eq!(*executed.lock().unwrap(), order);
    }

    #[test]
    #[should_panic(expected = "dispatch order must cover")]
    fn ordered_dispatch_rejects_short_orders() {
        let _ = run_order_with(4, 2, &[0, 1], || (), |(), i| i);
    }

    #[test]
    fn held_slots_shrink_batch_grants_without_blocking_or_changing_results() {
        let pool = Pool::new(2);
        let expected: Vec<usize> = (0..40).map(|i| i + 7).collect();
        let slot_a = pool.acquire();
        let slot_b = pool.acquire();
        assert_eq!(*pool.available.lock().unwrap(), 0);
        // Every slot is held: a batch must still complete (the calling
        // thread is worker 0) instead of waiting for a grant.
        assert_eq!(pool.run_indexed(40, 8, |i| i + 7), expected);
        drop(slot_a);
        assert_eq!(*pool.available.lock().unwrap(), 1);
        assert_eq!(pool.run_indexed(40, 8, |i| i + 7), expected);
        drop(slot_b);
        assert_eq!(*pool.available.lock().unwrap(), 2);
    }

    #[test]
    fn acquire_blocks_until_a_slot_is_released() {
        let pool = Pool::new(1);
        let slot = pool.acquire();
        let (started, observed) = (std::sync::mpsc::channel(), std::sync::mpsc::channel());
        std::thread::scope(|scope| {
            let pool = &pool;
            let observed_tx = observed.0.clone();
            scope.spawn(move || {
                started.0.send(()).unwrap();
                let _slot = pool.acquire();
                observed_tx.send(()).unwrap();
            });
            started.1.recv().unwrap();
            // The waiter is alive and cannot have a slot yet.
            assert!(observed
                .1
                .recv_timeout(std::time::Duration::from_millis(50))
                .is_err());
            drop(slot);
            observed
                .1
                .recv_timeout(std::time::Duration::from_secs(30))
                .expect("releasing the held slot must wake the waiter");
        });
        assert_eq!(*pool.available.lock().unwrap(), 1);
    }

    #[test]
    fn per_worker_state_is_reused_as_scratch() {
        // The scratch buffer must not leak into results, but reusing it
        // should work across tasks on the same worker.
        let out = run_indexed_with(64, 4, Vec::<usize>::new, |scratch, i| {
            scratch.clear();
            scratch.extend(0..=i);
            scratch.iter().sum::<usize>()
        });
        let expected: Vec<usize> = (0..64).map(|i| i * (i + 1) / 2).collect();
        assert_eq!(out, expected);
    }
}
