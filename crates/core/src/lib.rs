//! Budget-aware, long-sighted Bayesian optimization for tuning and
//! provisioning data analytic jobs — the **Lynceus** algorithm, plus the
//! baselines it is evaluated against.
//!
//! The optimization problem (paper Section 2): find the configuration
//! `x = ⟨N, H, P⟩` (cluster size, VM type, job parameters) that minimizes the
//! monetary cost `C(x) = T(x)·U(x)` of running a job, subject to a runtime
//! constraint `T(x) ≤ Tmax`, while keeping the *cumulative cost of all
//! profiling runs* within a budget `B`.
//!
//! This crate provides:
//!
//! * [`CostOracle`] — the black-box environment the optimizers profile
//!   (implemented by `lynceus-datasets` lookup tables or by any live system);
//! * [`LynceusOptimizer`] — the paper's algorithm (Algorithms 1 & 2):
//!   LHS bootstrap, budget-filtered candidates, Gauss–Hermite lookahead over
//!   exploration paths, reward/cost selection;
//! * [`BoOptimizer`] — the CherryPick/Arrow-style baseline (greedy
//!   constrained Expected Improvement);
//! * [`RandomOptimizer`] — the RND baseline;
//! * [`disjoint`] — the "ideal disjoint optimization" analysis of Figure 1b;
//! * extensions of Section 4.4: [`constraints`] (multiple constraints) and
//!   [`switching`] (setup costs);
//! * [`service`] — the multi-job serving layer: [`TuningService`] steps
//!   many concurrent sessions in parallel over one shared worker
//!   [`pool::Pool`], with steady submission from any thread, pluggable
//!   scheduling policies ([`SchedulePolicy`]) under a starvation guard,
//!   and per-session error isolation.
//!
//! # Example
//!
//! ```
//! use lynceus_core::{LynceusOptimizer, Optimizer, OptimizerSettings, TableOracle};
//! use lynceus_space::SpaceBuilder;
//!
//! // A toy 2-dimensional job: cost = runtime × a flat $1/s price.
//! let space = SpaceBuilder::new()
//!     .numeric("workers", (1..=6).map(f64::from))
//!     .numeric("batch", [16.0, 256.0])
//!     .build();
//! let oracle = TableOracle::from_fn(space, 1.0, |features| {
//!     let workers = features[0];
//!     let batch = features[1];
//!     20.0 / workers + workers + batch / 64.0
//! });
//!
//! let settings = OptimizerSettings {
//!     budget: 400.0,
//!     tmax_seconds: 1_000.0,
//!     ..OptimizerSettings::default()
//! };
//! let report = LynceusOptimizer::new(settings).optimize(&oracle, 7);
//! assert!(report.recommended.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acquisition;
pub mod bo;
pub mod budget;
pub mod checkpoint;
pub mod codec;
pub mod constraints;
pub mod disjoint;
pub mod faults;
pub mod lynceus;
pub mod optimizer;
pub mod oracle;
pub(crate) mod poison;
pub mod pool;
pub mod random;
pub mod receipt;
pub mod service;
pub mod state;
pub mod switching;
pub mod transfer;

pub use acquisition::{constrained_ei, expected_improvement, incumbent_cost, score_cmp};
pub use bo::BoOptimizer;
pub use budget::Budget;
pub use checkpoint::{CheckpointStore, DirStore, MemoryStore, SessionCheckpoint};
pub use codec::{CodecError, Decoder, Encoder};
pub use constraints::SecondaryConstraint;
pub use disjoint::{disjoint_optimization, DisjointOutcome};
pub use faults::{FaultKind, FaultPlan, FaultProfile, OracleFault};
pub use lynceus::{LynceusOptimizer, PathEngine, PruneStats, DEEP_CUT_LEVELS};
pub use optimizer::{
    Exploration, OptimizationReport, Optimizer, OptimizerError, OptimizerSettings, ProfileError,
};
pub use oracle::{CostOracle, Observation, TableOracle};
pub use pool::Pool;
pub use random::RandomOptimizer;
pub use receipt::DecisionReceipt;
pub use service::{
    RetryPolicy, SchedulePolicy, ServiceLoad, SessionError, SessionId, SessionOutcome, SessionSpec,
    SessionStatus, TuningService, STARVATION_LIMIT,
};
pub use state::{SearchState, SpeculativeCursor};
pub use switching::SwitchingCost;
// The knowledge stores stay module-qualified (`transfer::MemoryStore`,
// `transfer::DirStore`) — the crate-root names belong to the checkpoint
// stores.
pub use transfer::{JobKnowledge, KnowledgeStore, PriorObservation};
