//! The optimizer abstraction: settings, reports and the shared driver used by
//! every search strategy.

use crate::budget::Budget;
use crate::codec::CodecError;
use crate::constraints::SecondaryConstraint;
use crate::faults::OracleFault;
use crate::oracle::{CostOracle, Observation};
use crate::state::SearchState;
use crate::switching::SwitchingCost;
use lynceus_learners::{BaggingEnsemble, FeatureMatrix, Surrogate};
use lynceus_math::lhs::latin_hypercube_levels;
use lynceus_math::rng::SeededRng;
use lynceus_space::ConfigId;
use serde::{Deserialize, Serialize};

/// Settings shared by every optimizer.
///
/// The defaults follow the paper's default configuration (Section 5.2):
/// lookahead 2, discount factor 0.9, an ensemble of 10 random trees, a
/// bootstrap of `max(3%·|C|, dims)` configurations and a 0.99 confidence
/// level for the budget filter. The Gauss–Hermite rule size is not stated in
/// the paper; 4 nodes keeps the lookahead tractable and is configurable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizerSettings {
    /// Total profiling budget `B` in dollars.
    pub budget: f64,
    /// Runtime constraint `Tmax` in seconds.
    pub tmax_seconds: f64,
    /// Number of bootstrap configurations; `None` uses the paper's rule
    /// `max(3%·|C|, dims)`.
    pub bootstrap_samples: Option<usize>,
    /// Lookahead window `LA` (0 = cost-aware but myopic, the paper's LA=0
    /// baseline; ≥1 = long-sighted Lynceus).
    pub lookahead: usize,
    /// Number of Gauss–Hermite nodes `K` used to discretize speculated costs.
    pub gauss_hermite_nodes: usize,
    /// Discount factor `γ` applied to rewards of deeper exploration steps.
    pub discount: f64,
    /// Confidence level of the budget filter `P(c(x) ≤ β) ≥ confidence`.
    pub budget_confidence: f64,
    /// Number of trees in the bagging ensemble surrogate.
    pub ensemble_size: usize,
    /// Evaluate exploration paths in parallel across worker threads.
    pub parallel_paths: bool,
    /// Additional constraints (Section 4.4 extension); empty by default.
    pub secondary_constraints: Vec<SecondaryConstraint>,
}

impl Default for OptimizerSettings {
    fn default() -> Self {
        Self {
            budget: f64::INFINITY,
            tmax_seconds: f64::INFINITY,
            bootstrap_samples: None,
            lookahead: 2,
            gauss_hermite_nodes: 4,
            discount: 0.9,
            budget_confidence: 0.99,
            ensemble_size: 10,
            parallel_paths: true,
            secondary_constraints: Vec::new(),
        }
    }
}

impl OptimizerSettings {
    /// Checks the settings for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizerError::InvalidSetting`] describing the first
    /// offending field.
    // The negated comparisons deliberately treat NaN as invalid.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), OptimizerError> {
        if !(self.budget > 0.0) {
            return Err(OptimizerError::InvalidSetting(
                "budget must be positive".into(),
            ));
        }
        if !(self.tmax_seconds > 0.0) {
            return Err(OptimizerError::InvalidSetting(
                "tmax_seconds must be positive".into(),
            ));
        }
        if self.gauss_hermite_nodes == 0 {
            return Err(OptimizerError::InvalidSetting(
                "gauss_hermite_nodes must be at least 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.discount) {
            return Err(OptimizerError::InvalidSetting(
                "discount must be within [0, 1]".into(),
            ));
        }
        if !(self.budget_confidence > 0.0 && self.budget_confidence < 1.0) {
            return Err(OptimizerError::InvalidSetting(
                "budget_confidence must be within (0, 1)".into(),
            ));
        }
        if self.ensemble_size == 0 {
            return Err(OptimizerError::InvalidSetting(
                "ensemble_size must be at least 1".into(),
            ));
        }
        if let Some(0) = self.bootstrap_samples {
            return Err(OptimizerError::InvalidSetting(
                "bootstrap_samples must be at least 1 when specified".into(),
            ));
        }
        Ok(())
    }

    /// The number of bootstrap samples for a problem with `candidates`
    /// configurations and `dims` dimensions: the explicit setting if present,
    /// otherwise the paper's `max(⌈3%·|C|⌉, dims)` rule, capped at the number
    /// of candidates.
    #[must_use]
    pub fn bootstrap_count(&self, candidates: usize, dims: usize) -> usize {
        let n = self
            .bootstrap_samples
            .unwrap_or_else(|| ((candidates as f64 * 0.03).ceil() as usize).max(dims));
        n.clamp(1, candidates.max(1))
    }
}

/// Errors reported by the optimizers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptimizerError {
    /// A settings field is out of range.
    InvalidSetting(String),
    /// The oracle exposes no candidate configurations.
    NoCandidates,
}

impl std::fmt::Display for OptimizerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimizerError::InvalidSetting(reason) => write!(f, "invalid setting: {reason}"),
            OptimizerError::NoCandidates => write!(f, "the oracle has no candidate configurations"),
        }
    }
}

impl std::error::Error for OptimizerError {}

/// A recoverable error raised while profiling a configuration: the oracle (or
/// the switching-cost model) produced a value the budget bookkeeping cannot
/// accept. [`Budget::charge`] panics on such input; the driver validates
/// *before* charging so a misbehaving oracle surfaces as a per-session error
/// (see [`crate::service`]) instead of killing the whole process.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// The oracle reported a cost that is negative, NaN or infinite.
    InvalidCost {
        /// The configuration that was profiled.
        id: ConfigId,
        /// The unusable cost the oracle reported.
        cost: f64,
    },
    /// The switching-cost model produced a charge that is negative, NaN or
    /// infinite.
    InvalidSwitchingCost {
        /// The configuration deployed before the switch (`None` when nothing
        /// was deployed yet).
        from: Option<ConfigId>,
        /// The configuration being switched to.
        to: ConfigId,
        /// The unusable switching cost the model produced.
        cost: f64,
    },
    /// The profiling run itself failed with a recoverable fault (spot
    /// revocation, transient oracle error). Nothing was recorded or charged;
    /// the service's retry policy decides whether to run it again.
    Fault {
        /// The configuration whose run faulted.
        id: ConfigId,
        /// The fault the oracle reported.
        fault: OracleFault,
    },
}

impl ProfileError {
    /// True when a retry of the same run may succeed (oracle faults), false
    /// for contract violations (unusable costs) where retrying would just
    /// reproduce the bad value.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        match self {
            ProfileError::Fault { .. } => true,
            ProfileError::InvalidCost { .. } | ProfileError::InvalidSwitchingCost { .. } => false,
        }
    }
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::InvalidCost { id, cost } => write!(
                f,
                "oracle reported an unusable cost {cost} for configuration {}",
                id.index()
            ),
            ProfileError::InvalidSwitchingCost { from, to, cost } => write!(
                f,
                "switching-cost model produced an unusable charge {cost} for {:?} -> {}",
                from.map(ConfigId::index),
                to.index()
            ),
            ProfileError::Fault { id, fault } => write!(
                f,
                "profiling run of configuration {} faulted: {fault}",
                id.index()
            ),
        }
    }
}

impl std::error::Error for ProfileError {}

/// One profiling run performed during an optimization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Exploration {
    /// The configuration that was profiled.
    pub id: ConfigId,
    /// What the oracle reported.
    pub observation: Observation,
    /// True for the initial LHS bootstrap runs.
    pub bootstrap: bool,
}

/// The outcome of one optimization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizationReport {
    /// Name of the optimizer that produced the report.
    pub optimizer: String,
    /// Every profiling run, in order.
    pub explorations: Vec<Exploration>,
    /// The recommended configuration: the cheapest profiled configuration
    /// whose runtime satisfies `Tmax`. `None` when no profiled configuration
    /// was feasible.
    pub recommended: Option<ConfigId>,
    /// Cost of the recommended configuration.
    pub recommended_cost: Option<f64>,
    /// The budget the run started with.
    pub budget_initial: f64,
    /// Total amount spent on profiling (can exceed the budget slightly for
    /// budget-unaware baselines whose last run overshoots).
    pub budget_spent: f64,
    /// The runtime constraint used.
    pub tmax_seconds: f64,
}

impl OptimizationReport {
    /// Number of profiling runs performed (the paper's NEX metric).
    #[must_use]
    pub fn num_explorations(&self) -> usize {
        self.explorations.len()
    }

    /// True when at least one feasible configuration was found.
    #[must_use]
    pub fn feasible_found(&self) -> bool {
        self.recommended.is_some()
    }

    /// The cheapest *feasible* cost seen after each exploration, in order:
    /// entry `i` covers explorations `0..=i`. `None` while nothing feasible
    /// has been profiled yet. This is the data behind the paper's Figure 7.
    #[must_use]
    pub fn incumbent_trajectory(&self) -> Vec<Option<f64>> {
        let mut best: Option<f64> = None;
        self.explorations
            .iter()
            .map(|e| {
                if e.observation.runtime_seconds <= self.tmax_seconds {
                    best = Some(best.map_or(e.observation.cost, |b| b.min(e.observation.cost)));
                }
                best
            })
            .collect()
    }
}

/// How a [`Driver`] holds its oracle: borrowed for the standalone
/// `optimize()` entry points, owned for the service's long-lived sessions
/// (which outlive the submission call and hop between scheduler threads).
pub(crate) enum OracleHandle<'a> {
    Borrowed(&'a dyn CostOracle),
    Owned(Box<dyn CostOracle>),
}

impl OracleHandle<'_> {
    fn get(&self) -> &dyn CostOracle {
        match self {
            OracleHandle::Borrowed(oracle) => *oracle,
            OracleHandle::Owned(oracle) => oracle.as_ref(),
        }
    }
}

/// The shared optimization driver: bootstrap, profiling, bookkeeping and
/// report generation. Each optimizer plugs its own "pick the next
/// configuration" policy into this scaffold.
pub(crate) struct Driver<'a> {
    oracle: OracleHandle<'a>,
    pub(crate) settings: OptimizerSettings,
    pub(crate) state: SearchState,
    pub(crate) explorations: Vec<Exploration>,
    /// Row-major feature matrix of the whole grid: row `i` is the feature
    /// vector of `ConfigId(i)`. Computed once per run so the surrogate's
    /// batched prediction paths never re-slice or re-derive features.
    features: FeatureMatrix,
    /// Price rates `U(x)` in dollars/second, indexed by `ConfigId::index`.
    price_rates: Vec<f64>,
    /// Metric vectors of profiled configurations (for secondary constraints).
    observed_metrics: Vec<(Vec<f64>, Vec<f64>)>,
    model_seed: u64,
    /// The per-decision arena of the batched / branch-and-bound speculation
    /// engines (prediction buffers, Γ extraction, bound and dispatch
    /// buffers, per-worker scratch recycler). Driver-owned — like the
    /// feature matrix above — so capacities established by the first
    /// decision are reused by every later `select_next` call instead of
    /// being reallocated per decision.
    pub(crate) decision_scratch: crate::lynceus::DecisionScratch,
}

impl<'a> Driver<'a> {
    pub(crate) fn new(oracle: &'a dyn CostOracle, settings: &OptimizerSettings, seed: u64) -> Self {
        Self::build(OracleHandle::Borrowed(oracle), settings, seed)
    }

    /// A driver that owns its oracle, so the resulting `Driver<'static>` can
    /// live in the service's session registry and be stepped from any
    /// scheduler thread.
    pub(crate) fn owned(
        oracle: Box<dyn CostOracle>,
        settings: &OptimizerSettings,
        seed: u64,
    ) -> Driver<'static> {
        Driver::build(OracleHandle::Owned(oracle), settings, seed)
    }

    fn build(oracle: OracleHandle<'a>, settings: &OptimizerSettings, seed: u64) -> Self {
        let space = oracle.get().space();
        let candidates = oracle.get().candidates();
        let features =
            FeatureMatrix::from_rows(space.dims(), space.ids().map(|id| space.features_of(id)));
        // Price rates are only defined for candidate configurations (the grid
        // may be larger than the measured space); non-candidates are never
        // queried.
        let mut price_rates = vec![0.0; space.len()];
        for &id in &candidates {
            price_rates[id.index()] = oracle.get().price_rate(id);
        }
        let state = SearchState::new(candidates, Budget::new(settings.budget));
        Self {
            oracle,
            settings: settings.clone(),
            state,
            explorations: Vec::new(),
            features,
            price_rates,
            observed_metrics: Vec::new(),
            model_seed: seed,
            decision_scratch: crate::lynceus::DecisionScratch::default(),
        }
    }

    /// The oracle this run profiles.
    pub(crate) fn oracle(&self) -> &dyn CostOracle {
        self.oracle.get()
    }

    /// Reclaims an owned oracle from the driver (e.g. to rebuild a session
    /// from a checkpoint after a contained panic). `None` for drivers that
    /// merely borrow their oracle.
    pub(crate) fn into_oracle(self) -> Option<Box<dyn CostOracle>> {
        match self.oracle {
            OracleHandle::Owned(oracle) => Some(oracle),
            OracleHandle::Borrowed(_) => None,
        }
    }

    /// Overwrites the driver's bookkeeping with checkpointed state: the
    /// search state `Σ` and the exploration log are taken verbatim, and the
    /// observed-metrics table (a pure function of the explorations and the
    /// feature matrix) is rebuilt to match. Everything else on the driver —
    /// feature matrix, price rates, settings, model seed — is derived from
    /// the oracle and settings, which the caller reconstructs identically.
    pub(crate) fn restore(&mut self, state: SearchState, explorations: Vec<Exploration>) {
        self.restore_with_prior(state, explorations, &[]);
    }

    /// [`Driver::restore`] for warm sessions: the observed-metrics table is
    /// rebuilt as *replayed prior rows first, then explorations* — the exact
    /// order the live warm run built it in, which constraint-model fits
    /// depend on. (`Σ` already contains the replayed prior configurations;
    /// only the metrics table has to be re-derived here, because prior
    /// observations never enter the exploration log.)
    pub(crate) fn restore_with_prior(
        &mut self,
        state: SearchState,
        explorations: Vec<Exploration>,
        prior: &[crate::transfer::PriorObservation],
    ) {
        self.observed_metrics = prior
            .iter()
            .map(|o| (self.features.row(o.id.index()).to_vec(), o.metrics.clone()))
            .chain(explorations.iter().map(|e| {
                (
                    self.features.row(e.id.index()).to_vec(),
                    e.observation.metrics.clone(),
                )
            }))
            .collect();
        self.state = state;
        self.explorations = explorations;
    }

    /// Replays a prior run's observations into `Σ` and the metrics table —
    /// training points the recurring job already paid for, so no budget
    /// charge, no switching charge and no exploration-log entry. Called
    /// once, before the session's first own step.
    ///
    /// # Errors
    ///
    /// Rejects (driver untouched for the failing entry onward) observations
    /// naming non-candidate or duplicate configurations, or violating the
    /// knowledge float policy — a hand-built prior gets the same scrutiny
    /// as a decoded one.
    pub(crate) fn replay_prior(
        &mut self,
        observations: &[crate::transfer::PriorObservation],
    ) -> Result<(), CodecError> {
        for o in observations {
            if !(o.cost.is_finite()
                && o.cost >= 0.0
                && o.runtime_seconds.is_finite()
                && o.runtime_seconds >= 0.0)
                || o.metrics.iter().any(|m| !m.is_finite())
            {
                return Err(CodecError::Invalid("non-finite prior observation"));
            }
            if !self.state.untested().contains(&o.id) {
                return Err(CodecError::Invalid(
                    "prior observation is not an untested candidate",
                ));
            }
            let feasible = o.runtime_seconds <= self.settings.tmax_seconds;
            self.state.replay(o.id, o.cost, feasible);
            self.observed_metrics
                .push((self.features.row(o.id.index()).to_vec(), o.metrics.clone()));
        }
        Ok(())
    }

    /// Feature vector of a configuration (cached).
    pub(crate) fn features_of(&self, id: ConfigId) -> &[f64] {
        self.features.row(id.index())
    }

    /// The precomputed feature matrix of the whole grid (row `i` =
    /// `ConfigId(i)`), the backing store of every batched prediction.
    pub(crate) fn feature_matrix(&self) -> &FeatureMatrix {
        &self.features
    }

    /// `Tmax·U(x)`: the cost cap that encodes the runtime constraint.
    pub(crate) fn constraint_cost_cap(&self, id: ConfigId) -> f64 {
        self.settings.tmax_seconds * self.price_rates[id.index()]
    }

    /// Seed used to build surrogate models for this run.
    pub(crate) fn model_seed(&self) -> u64 {
        self.model_seed
    }

    /// Overrides the surrogate seed with a recurring job's canonical
    /// ensemble seed, so *every* surrogate construction path (the session's
    /// incremental chain, the naive engine's per-decision scratch fits, a
    /// checkpoint restore's whole-set refit) extends the prior run's fits
    /// bit-identically.
    pub(crate) fn set_model_seed(&mut self, seed: u64) {
        self.model_seed = seed;
    }

    /// Metric vectors observed so far (for the multi-constraint extension).
    pub(crate) fn observed_metrics(&self) -> &[(Vec<f64>, Vec<f64>)] {
        &self.observed_metrics
    }

    /// Profiles the job on a configuration, charging the observation cost and
    /// any switching cost, and recording the exploration.
    ///
    /// # Panics
    ///
    /// Panics if the oracle or the switching model produce a cost the budget
    /// cannot be charged with (negative, NaN or infinite). Use
    /// [`Driver::try_profile`] to surface that as a recoverable error
    /// instead.
    pub(crate) fn profile(
        &mut self,
        id: ConfigId,
        bootstrap: bool,
        switching: &dyn SwitchingCost,
    ) -> &Observation {
        self.try_profile(id, bootstrap, switching)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible counterpart of [`Driver::profile`]: validates the observation
    /// cost and the switching charge *before* anything is recorded, so a
    /// misbehaving oracle (e.g. one returning `inf` or NaN) is reported as a
    /// [`ProfileError`] with the driver state untouched — the multi-session
    /// service turns this into a per-session `Failed` state instead of a
    /// process-wide panic.
    pub(crate) fn try_profile(
        &mut self,
        id: ConfigId,
        bootstrap: bool,
        switching: &dyn SwitchingCost,
    ) -> Result<&Observation, ProfileError> {
        let switch_cost = switching.cost(self.state.current(), id);
        if !(switch_cost.is_finite() && switch_cost >= 0.0) {
            return Err(ProfileError::InvalidSwitchingCost {
                from: self.state.current(),
                to: id,
                cost: switch_cost,
            });
        }
        let observation = self
            .oracle
            .get()
            .try_run(id)
            .map_err(|fault| ProfileError::Fault { id, fault })?;
        if !(observation.cost.is_finite() && observation.cost >= 0.0) {
            return Err(ProfileError::InvalidCost {
                id,
                cost: observation.cost,
            });
        }
        let feasible = observation.runtime_seconds <= self.settings.tmax_seconds;
        self.state.record(id, observation.cost, feasible);
        if switch_cost > 0.0 {
            self.state.charge_extra(switch_cost);
        }
        self.observed_metrics.push((
            self.features.row(id.index()).to_vec(),
            observation.metrics.clone(),
        ));
        self.explorations.push(Exploration {
            id,
            observation,
            bootstrap,
        });
        Ok(&self.explorations.last().expect("just pushed").observation)
    }

    /// Draws the LHS bootstrap plan (Algorithm 1, lines 6–8) without running
    /// anything. Consuming the plan one sample at a time with
    /// [`Driver::bootstrap_step`] reproduces [`Driver::bootstrap`] exactly —
    /// the split exists so the multi-session scheduler can interleave
    /// bootstrap runs of different sessions fairly.
    pub(crate) fn bootstrap_plan(&self, rng: &mut SeededRng) -> Vec<Vec<usize>> {
        self.bootstrap_plan_shrunk(rng, 0)
    }

    /// [`Driver::bootstrap_plan`] minus `replayed` samples: a warm session
    /// counts the prior run's replayed observations against the bootstrap
    /// quota, so a prior at least as large as the quota skips the LHS phase
    /// entirely and the first decision is model-driven.
    pub(crate) fn bootstrap_plan_shrunk(
        &self,
        rng: &mut SeededRng,
        replayed: usize,
    ) -> Vec<Vec<usize>> {
        let space = self.oracle.get().space();
        let n = self
            .settings
            .bootstrap_count(self.state.untested().len(), space.dims())
            .saturating_sub(replayed);
        if n == 0 {
            // Prior covers the whole quota: skip the LHS phase (and its
            // RNG draws) entirely — the first step is a model decision.
            return Vec::new();
        }
        latin_hypercube_levels(n, &space.cardinalities(), rng)
    }

    /// Profiles one sample of the bootstrap plan. Returns the configuration
    /// that was profiled, or `None` when the untested set is exhausted (the
    /// remaining plan should then be dropped).
    pub(crate) fn bootstrap_step(
        &mut self,
        sample: &[usize],
        rng: &mut SeededRng,
        switching: &dyn SwitchingCost,
    ) -> Result<Option<ConfigId>, ProfileError> {
        let space = self.oracle.get().space();
        let config = lynceus_space::Config::new(sample.to_vec());
        let id = space.id_of(&config).map(ConfigId);
        // Fall back to a random untested candidate when the LHS point is
        // outside the candidate set (irregular spaces) or already chosen.
        let id = match id {
            Some(id) if self.state.untested().contains(&id) => id,
            _ => {
                if self.state.untested().is_empty() {
                    return Ok(None);
                }
                *rng.choose(self.state.untested()).expect("non-empty")
            }
        };
        self.try_profile(id, true, switching)?;
        Ok(Some(id))
    }

    /// Runs the LHS bootstrap phase (Algorithm 1, lines 6–8).
    pub(crate) fn bootstrap(&mut self, rng: &mut SeededRng, switching: &dyn SwitchingCost) {
        for sample in self.bootstrap_plan(rng) {
            let profiled = self
                .bootstrap_step(&sample, rng, switching)
                .unwrap_or_else(|e| panic!("{e}"));
            if profiled.is_none() {
                break;
            }
        }
    }

    /// Fits the cost surrogate on the current training set.
    pub(crate) fn fit_cost_model(&self) -> BaggingEnsemble {
        let mut model = BaggingEnsemble::with_seed(self.settings.ensemble_size, self.model_seed);
        let data = self.state.training_set(self.oracle.get().space());
        if !data.is_empty() {
            model.fit(&data);
        }
        model
    }

    /// Builds the final report (Algorithm 1, line 12: return the cheapest
    /// configuration tried whose runtime satisfies `Tmax` and whose observed
    /// metrics satisfy every secondary constraint).
    pub(crate) fn finish(self, optimizer: &str) -> OptimizationReport {
        let satisfies_secondary = |e: &Exploration| {
            self.settings.secondary_constraints.iter().all(|c| {
                e.observation
                    .metrics
                    .get(c.metric_index)
                    .is_some_and(|&value| value <= c.threshold)
            })
        };
        let recommended = self
            .explorations
            .iter()
            .filter(|e| e.observation.runtime_seconds <= self.settings.tmax_seconds)
            .filter(|e| satisfies_secondary(e))
            .min_by(|a, b| a.observation.cost.total_cmp(&b.observation.cost));
        OptimizationReport {
            optimizer: optimizer.to_owned(),
            recommended: recommended.map(|e| e.id),
            recommended_cost: recommended.map(|e| e.observation.cost),
            budget_initial: self.settings.budget,
            budget_spent: self.state.budget().spent(),
            explorations: self.explorations,
            tmax_seconds: self.settings.tmax_seconds,
        }
    }
}

/// A search strategy that can be run against any [`CostOracle`].
pub trait Optimizer: Send + Sync {
    /// Short name used in reports and figures (e.g. `"Lynceus"`, `"BO"`).
    fn name(&self) -> &str;

    /// Runs one full optimization with the given random seed (the seed drives
    /// the bootstrap sampling and any stochastic choice of the strategy).
    fn optimize(&self, oracle: &dyn CostOracle, seed: u64) -> OptimizationReport;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TableOracle;
    use crate::switching::FreeSwitching;
    use lynceus_space::SpaceBuilder;

    fn toy_oracle() -> TableOracle {
        let space = SpaceBuilder::new()
            .numeric("x", (0..8).map(f64::from))
            .numeric("y", [0.0, 1.0])
            .build();
        TableOracle::from_fn(space, 1.0, |f| 10.0 + f[0] + 5.0 * f[1])
    }

    #[test]
    fn default_settings_are_valid_and_match_the_paper() {
        let settings = OptimizerSettings::default();
        assert!(settings.validate().is_ok());
        assert_eq!(settings.lookahead, 2);
        assert_eq!(settings.ensemble_size, 10);
        assert!((settings.discount - 0.9).abs() < 1e-12);
        assert!((settings.budget_confidence - 0.99).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_fields() {
        let invalid = |s: OptimizerSettings| s.validate().is_err();
        assert!(matches!(
            OptimizerSettings {
                budget: 0.0,
                ..OptimizerSettings::default()
            }
            .validate(),
            Err(OptimizerError::InvalidSetting(_))
        ));
        assert!(invalid(OptimizerSettings {
            discount: 1.5,
            ..OptimizerSettings::default()
        }));
        assert!(invalid(OptimizerSettings {
            budget_confidence: 1.0,
            ..OptimizerSettings::default()
        }));
        assert!(invalid(OptimizerSettings {
            gauss_hermite_nodes: 0,
            ..OptimizerSettings::default()
        }));
        assert!(invalid(OptimizerSettings {
            ensemble_size: 0,
            ..OptimizerSettings::default()
        }));
        assert!(invalid(OptimizerSettings {
            bootstrap_samples: Some(0),
            ..OptimizerSettings::default()
        }));
        assert!(OptimizerError::NoCandidates
            .to_string()
            .contains("candidate"));
    }

    #[test]
    fn bootstrap_count_follows_the_paper_rule() {
        let settings = OptimizerSettings::default();
        // max(3% of 384 = 11.52 → 12, 5 dims) = 12
        assert_eq!(settings.bootstrap_count(384, 5), 12);
        // max(3% of 69 = 2.07 → 3, 3 dims) = 3
        assert_eq!(settings.bootstrap_count(69, 3), 3);
        // Dimensions dominate tiny spaces.
        assert_eq!(settings.bootstrap_count(40, 5), 5);
        // Explicit override wins, but is capped at the number of candidates.
        let explicit = OptimizerSettings {
            bootstrap_samples: Some(100),
            ..OptimizerSettings::default()
        };
        assert_eq!(explicit.bootstrap_count(30, 3), 30);
    }

    #[test]
    fn driver_bootstrap_profiles_distinct_configurations() {
        let oracle = toy_oracle();
        let settings = OptimizerSettings {
            budget: 1_000.0,
            tmax_seconds: 100.0,
            bootstrap_samples: Some(6),
            ..OptimizerSettings::default()
        };
        let mut driver = Driver::new(&oracle, &settings, 3);
        let mut rng = SeededRng::new(3);
        driver.bootstrap(&mut rng, &FreeSwitching);
        assert_eq!(driver.explorations.len(), 6);
        let distinct: std::collections::HashSet<_> =
            driver.explorations.iter().map(|e| e.id).collect();
        assert_eq!(distinct.len(), 6);
        assert!(driver.explorations.iter().all(|e| e.bootstrap));
        assert!(driver.state.budget().spent() > 0.0);
    }

    #[test]
    fn finish_recommends_the_cheapest_feasible_configuration() {
        let oracle = toy_oracle();
        let settings = OptimizerSettings {
            budget: 1_000.0,
            // Only configurations with runtime <= 13 are feasible.
            tmax_seconds: 13.0,
            ..OptimizerSettings::default()
        };
        let mut driver = Driver::new(&oracle, &settings, 0);
        // Profile a feasible config (runtime 11) and an infeasible one (16).
        driver.profile(ConfigId(1), false, &FreeSwitching); // x=0? id 1 → x=0,y=1 → 15 infeasible
        driver.profile(ConfigId(2), false, &FreeSwitching); // x=1,y=0 → 11 feasible
        driver.profile(ConfigId(6), false, &FreeSwitching); // x=3,y=0 → 13 feasible
        let report = driver.finish("test");
        assert_eq!(report.recommended, Some(ConfigId(2)));
        assert_eq!(report.recommended_cost, Some(11.0));
        assert!(report.feasible_found());
        assert_eq!(report.num_explorations(), 3);
        let trajectory = report.incumbent_trajectory();
        assert_eq!(trajectory, vec![None, Some(11.0), Some(11.0)]);
    }

    #[test]
    fn finish_with_no_feasible_configuration_recommends_nothing() {
        let oracle = toy_oracle();
        let settings = OptimizerSettings {
            budget: 1_000.0,
            tmax_seconds: 1.0,
            ..OptimizerSettings::default()
        };
        let mut driver = Driver::new(&oracle, &settings, 0);
        driver.profile(ConfigId(0), false, &FreeSwitching);
        let report = driver.finish("test");
        assert!(report.recommended.is_none());
        assert!(!report.feasible_found());
        assert_eq!(report.incumbent_trajectory(), vec![None]);
    }

    /// An oracle whose configuration 0 reports a non-finite cost.
    struct PoisonOracle {
        inner: TableOracle,
        poison_cost: f64,
    }

    impl CostOracle for PoisonOracle {
        fn space(&self) -> &lynceus_space::ConfigSpace {
            self.inner.space()
        }
        fn candidates(&self) -> Vec<ConfigId> {
            self.inner.candidates()
        }
        fn run(&self, id: ConfigId) -> Observation {
            if id == ConfigId(0) {
                Observation::new(1.0, self.poison_cost)
            } else {
                self.inner.run(id)
            }
        }
        fn price_rate(&self, id: ConfigId) -> f64 {
            self.inner.price_rate(id)
        }
    }

    #[test]
    fn try_profile_surfaces_non_finite_costs_without_touching_state() {
        for poison in [f64::INFINITY, f64::NAN, -3.0] {
            let oracle = PoisonOracle {
                inner: toy_oracle(),
                poison_cost: poison,
            };
            let settings = OptimizerSettings {
                budget: 1_000.0,
                tmax_seconds: 100.0,
                ..OptimizerSettings::default()
            };
            let mut driver = Driver::new(&oracle, &settings, 0);
            driver.profile(ConfigId(1), false, &FreeSwitching);
            let before_remaining = driver.state.budget().remaining();
            let err = driver
                .try_profile(ConfigId(0), false, &FreeSwitching)
                .unwrap_err();
            assert!(
                matches!(err, ProfileError::InvalidCost { id: ConfigId(0), cost } if cost.is_nan() == poison.is_nan()),
                "unexpected error {err} for poison cost {poison}"
            );
            // The failed run left no trace: no exploration, no budget charge,
            // the configuration is still untested.
            assert_eq!(driver.explorations.len(), 1);
            assert_eq!(driver.state.budget().remaining(), before_remaining);
            assert!(!driver.state.is_tested(ConfigId(0)));
            assert!(err.to_string().contains("unusable cost"));
        }
    }

    #[test]
    fn try_profile_rejects_non_finite_switching_charges() {
        let oracle = toy_oracle();
        let settings = OptimizerSettings {
            budget: 1_000.0,
            tmax_seconds: 100.0,
            ..OptimizerSettings::default()
        };
        let mut driver = Driver::new(&oracle, &settings, 0);
        driver.profile(ConfigId(1), false, &FreeSwitching);
        let bad = crate::switching::FnSwitching(
            |from: Option<ConfigId>, _| {
                if from.is_some() {
                    f64::INFINITY
                } else {
                    0.0
                }
            },
        );
        let err = driver.try_profile(ConfigId(2), false, &bad).unwrap_err();
        assert!(matches!(
            err,
            ProfileError::InvalidSwitchingCost {
                from: Some(ConfigId(1)),
                to: ConfigId(2),
                ..
            }
        ));
        assert!(err.to_string().contains("switching-cost"));
        assert!(!driver.state.is_tested(ConfigId(2)));
    }

    #[test]
    fn constraint_cost_cap_combines_tmax_and_price() {
        let oracle = toy_oracle();
        let settings = OptimizerSettings {
            tmax_seconds: 20.0,
            ..OptimizerSettings::default()
        };
        let driver = Driver::new(&oracle, &settings, 0);
        assert!((driver.constraint_cost_cap(ConfigId(0)) - 20.0).abs() < 1e-12);
        assert_eq!(driver.features_of(ConfigId(3)).len(), 2);
    }
}
