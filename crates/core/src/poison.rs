//! Poison-tolerant lock acquisition for the panic-containment paths.
//!
//! The pool and the service scheduler contain user panics with
//! `catch_unwind`, so a panicking oracle never unwinds through scheduler
//! code while a lock is held. But *defense in depth*: if a bug ever did
//! panic a thread mid-critical-section, `Mutex::lock().expect(...)` at every
//! other site would cascade that single failure into a service-wide poison
//! panic — exactly the blast radius the per-session isolation exists to
//! prevent. Every lock in the containment paths therefore recovers the
//! guard from a poisoned lock instead of panicking: the protected state is
//! plain data (queues, counters, registries) whose invariants are restored
//! or checked by the next holder, and a possibly-stale view is strictly
//! better than taking down every unrelated session.
//!
//! (The `lynceus-lint` `no-panic` rule enforces this: `unwrap()`/`expect()`
//! are banned in `core::{pool,service,lynceus}` outside `#[cfg(test)]`.)

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks `mutex`, recovering the guard if a previous holder panicked.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `condvar`, recovering the reacquired guard if a holder panicked
/// while the waiter was parked.
pub(crate) fn wait<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_recovers_from_a_poisoned_mutex() {
        let mutex = Arc::new(Mutex::new(7u32));
        let poisoner = Arc::clone(&mutex);
        // lint: allow(thread-spawn) -- the test needs a raw thread to poison the lock; joined before any assertion
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(mutex.is_poisoned());
        assert_eq!(*lock(&mutex), 7);
        *lock(&mutex) = 8;
        assert_eq!(*lock(&mutex), 8);
    }
}
