//! Profiling-budget bookkeeping.

use serde::{Deserialize, Serialize};

/// The monetary budget `B` available for profiling runs.
///
/// Every run charges its cost against the budget (Algorithm 1's
/// `β ← β − c`); the optimizer stops when no candidate configuration can be
/// afforded any more.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Budget {
    initial: f64,
    remaining: f64,
}

impl Budget {
    /// Creates a budget of `initial` dollars. `f64::INFINITY` means
    /// "unlimited budget" (no profiling-cost constraint).
    ///
    /// # Panics
    ///
    /// Panics if `initial` is negative or NaN.
    #[must_use]
    pub fn new(initial: f64) -> Self {
        assert!(
            initial >= 0.0 && !initial.is_nan(),
            "budget must be a non-negative amount"
        );
        Self {
            initial,
            remaining: initial,
        }
    }

    /// Rebuilds a budget from checkpointed values. Unlike [`Budget::new`],
    /// `remaining` may be negative (a budget-unaware baseline's last run can
    /// overshoot before the checkpoint is written) — but neither value may be
    /// NaN, and `remaining` must not exceed `initial`.
    ///
    /// # Panics
    ///
    /// Panics on NaN inputs, a negative `initial`, or `remaining > initial`.
    #[must_use]
    pub(crate) fn from_parts(initial: f64, remaining: f64) -> Self {
        assert!(
            initial >= 0.0 && !initial.is_nan(),
            "budget must be a non-negative amount"
        );
        assert!(
            remaining <= initial && !remaining.is_nan(),
            "remaining budget must be a non-NaN amount of at most the initial budget"
        );
        Self { initial, remaining }
    }

    /// The budget the optimizer started with.
    #[must_use]
    pub fn initial(&self) -> f64 {
        self.initial
    }

    /// The budget still available.
    #[must_use]
    pub fn remaining(&self) -> f64 {
        self.remaining
    }

    /// The amount already spent.
    #[must_use]
    pub fn spent(&self) -> f64 {
        self.initial - self.remaining
    }

    /// True when there is any budget left.
    #[must_use]
    pub fn has_remaining(&self) -> bool {
        self.remaining > 0.0
    }

    /// Charges a cost against the budget. The remaining budget may become
    /// negative (the final profiling run of a budget-unaware baseline can
    /// overshoot); the overshoot is reported rather than hidden.
    ///
    /// # Panics
    ///
    /// Panics if `cost` is negative or not finite. The profiling driver
    /// validates oracle and switching-model outputs *before* charging, so a
    /// misbehaving oracle surfaces as a recoverable
    /// `optimizer::ProfileError` (and, under the multi-session service, a
    /// per-session `Failed` state) instead of reaching this assertion.
    pub fn charge(&mut self, cost: f64) {
        assert!(
            cost >= 0.0 && cost.is_finite(),
            "cost must be a finite non-negative amount"
        );
        self.remaining -= cost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut budget = Budget::new(10.0);
        assert_eq!(budget.initial(), 10.0);
        assert!(budget.has_remaining());
        budget.charge(4.0);
        budget.charge(1.5);
        assert!((budget.remaining() - 4.5).abs() < 1e-12);
        assert!((budget.spent() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn overshoot_goes_negative_but_is_tracked() {
        let mut budget = Budget::new(1.0);
        budget.charge(2.5);
        assert!(budget.remaining() < 0.0);
        assert!(!budget.has_remaining());
        assert!((budget.spent() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn zero_budget_has_nothing_remaining() {
        let budget = Budget::new(0.0);
        assert!(!budget.has_remaining());
    }

    #[test]
    #[should_panic(expected = "non-negative amount")]
    fn negative_budget_panics() {
        let _ = Budget::new(-1.0);
    }

    #[test]
    fn infinite_budget_never_runs_out() {
        let mut budget = Budget::new(f64::INFINITY);
        budget.charge(1e12);
        assert!(budget.has_remaining());
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_charge_panics() {
        let mut budget = Budget::new(1.0);
        budget.charge(-0.5);
    }
}
