//! Result of simulating one job run.

use serde::{Deserialize, Serialize};

/// The observable outcome of running a job on a cluster: what the paper's
/// profiling harness would have measured.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Execution {
    /// Wall-clock runtime in seconds (capped at the timeout when
    /// `timed_out`).
    pub runtime_seconds: f64,
    /// Monetary cost in dollars (`runtime × cluster price`, per-second
    /// billing), including the time spent before a forced termination.
    pub cost: f64,
    /// True when the job hit the dataset's timeout and was forcefully
    /// terminated (the TensorFlow jobs use a 10-minute timeout).
    pub timed_out: bool,
}

impl Execution {
    /// Builds an execution outcome, capping the runtime at `timeout_seconds`
    /// when provided.
    ///
    /// # Panics
    ///
    /// Panics if the runtime is negative or not finite, or if the price is
    /// negative.
    #[must_use]
    pub fn from_runtime(
        runtime_seconds: f64,
        price_per_second: f64,
        timeout_seconds: Option<f64>,
    ) -> Self {
        assert!(
            runtime_seconds >= 0.0 && runtime_seconds.is_finite(),
            "runtime must be finite and non-negative"
        );
        assert!(price_per_second >= 0.0, "price must be non-negative");
        let (runtime, timed_out) = match timeout_seconds {
            Some(t) if runtime_seconds > t => (t, true),
            _ => (runtime_seconds, false),
        };
        Self {
            runtime_seconds: runtime,
            cost: runtime * price_per_second,
            timed_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_runtime_times_price() {
        let e = Execution::from_runtime(120.0, 0.01, None);
        assert_eq!(e.runtime_seconds, 120.0);
        assert!((e.cost - 1.2).abs() < 1e-12);
        assert!(!e.timed_out);
    }

    #[test]
    fn timeout_caps_the_runtime_and_flags_the_run() {
        let e = Execution::from_runtime(1000.0, 0.01, Some(600.0));
        assert_eq!(e.runtime_seconds, 600.0);
        assert!((e.cost - 6.0).abs() < 1e-12);
        assert!(e.timed_out);
    }

    #[test]
    fn runtime_below_timeout_is_untouched() {
        let e = Execution::from_runtime(100.0, 0.02, Some(600.0));
        assert_eq!(e.runtime_seconds, 100.0);
        assert!(!e.timed_out);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_runtime_panics() {
        let _ = Execution::from_runtime(-1.0, 0.01, None);
    }
}
