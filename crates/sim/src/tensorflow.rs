//! Parameter-server model of distributed TensorFlow training.
//!
//! The paper's first dataset trains three neural networks (Multilayer, CNN,
//! RNN) on MNIST with distributed TensorFlow until they reach accuracy 0.85,
//! across 384 configurations: 12 hyper-parameter combinations (Table 1) × 32
//! cluster shapes (Table 2). This module provides the analytic substitute for
//! those measurements (see `DESIGN.md`): a parameter-server performance model
//! whose runtime is the sum of
//!
//! * a fixed startup/warm-up term,
//! * a **compute** term — samples to convergence × per-sample work, divided
//!   by the cluster's aggregate (speed-weighted) cores, inflated by a
//!   synchronization/straggler factor in `sync` mode,
//! * a **communication** term — gradient/parameter exchange through the
//!   parameter server, whose bandwidth is the bottleneck, and
//! * a **memory-pressure** penalty when the per-worker working set exceeds
//!   the VM's RAM.
//!
//! Convergence (the number of samples that must be processed) depends on the
//! learning rate, the batch size, the training mode and the network kind, and
//! it *interacts* with the cluster: asynchronous training suffers a staleness
//! penalty that grows with the number of workers. These interactions are what
//! makes joint optimization necessary (paper Figure 1b).

use crate::execution::Execution;
use lynceus_cloud::ClusterSpec;
use serde::{Deserialize, Serialize};

/// The three neural-network training jobs of the TensorFlow dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkKind {
    /// A small fully-connected network.
    Multilayer,
    /// A convolutional network.
    Cnn,
    /// A recurrent network.
    Rnn,
}

impl NetworkKind {
    /// All three kinds, in the order the paper lists them.
    #[must_use]
    pub fn all() -> [NetworkKind; 3] {
        [NetworkKind::Multilayer, NetworkKind::Cnn, NetworkKind::Rnn]
    }

    /// Human-readable name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NetworkKind::Multilayer => "Multilayer",
            NetworkKind::Cnn => "CNN",
            NetworkKind::Rnn => "RNN",
        }
    }
}

impl std::fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Worker/parameter-server update mode (Table 1's `training mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrainingMode {
    /// Workers update the model in synchronized rounds.
    Sync,
    /// Workers update the model asynchronously.
    Async,
}

impl TrainingMode {
    /// The label used in the configuration space (`"sync"` / `"async"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TrainingMode::Sync => "sync",
            TrainingMode::Async => "async",
        }
    }

    /// Parses a label produced by [`TrainingMode::label`].
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "sync" => Some(TrainingMode::Sync),
            "async" => Some(TrainingMode::Async),
            _ => None,
        }
    }
}

impl std::fmt::Display for TrainingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The hyper-parameters of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TfHyperParams {
    /// Learning rate (one of `1e-3`, `1e-4`, `1e-5` in the dataset grid).
    pub learning_rate: f64,
    /// Batch size per worker (16 or 256 in the dataset grid).
    pub batch_size: u32,
    /// Synchronous or asynchronous updates.
    pub training_mode: TrainingMode,
}

/// Analytic performance model of one TensorFlow training job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TensorflowModel {
    kind: NetworkKind,
    /// Number of training samples per epoch (MNIST: 55 000).
    samples_per_epoch: f64,
    /// Per-sample compute on one reference core, in milliseconds.
    ms_per_sample: f64,
    /// Model size exchanged with the parameter server, in megabytes.
    params_mb: f64,
    /// Epochs to reach the target accuracy in the best hyper-parameter
    /// setting.
    base_epochs: f64,
    /// Fixed startup + warm-up seconds (cluster allocation is not billed, but
    /// graph construction and data sharding are).
    startup_seconds: f64,
}

impl TensorflowModel {
    /// The model for a given network kind, with the calibration used by the
    /// dataset generator.
    #[must_use]
    pub fn new(kind: NetworkKind) -> Self {
        let (ms_per_sample, params_mb, base_epochs) = match kind {
            NetworkKind::Multilayer => (10.0, 2.0, 1.2),
            NetworkKind::Cnn => (25.0, 4.0, 2.0),
            NetworkKind::Rnn => (18.0, 4.0, 2.2),
        };
        Self {
            kind,
            samples_per_epoch: 55_000.0,
            ms_per_sample,
            params_mb,
            base_epochs,
            startup_seconds: 20.0,
        }
    }

    /// The network kind this model simulates.
    #[must_use]
    pub fn kind(&self) -> NetworkKind {
        self.kind
    }

    /// Epochs needed to reach the target accuracy for a hyper-parameter
    /// setting on a given number of workers.
    ///
    /// Captures the convergence behaviour that couples hyper-parameters and
    /// cluster size: asynchronous staleness grows with the worker count, a
    /// low learning rate needs many more passes, and RNNs are unstable at the
    /// highest learning rate.
    #[must_use]
    pub fn epochs_to_converge(&self, params: &TfHyperParams, workers: u32) -> f64 {
        let lr_factor = if params.learning_rate >= 1e-3 {
            match self.kind {
                // RNNs destabilize at the aggressive rate and need extra
                // passes to settle.
                NetworkKind::Rnn => 2.5,
                _ => 1.0,
            }
        } else if params.learning_rate >= 1e-4 {
            1.6
        } else {
            5.0
        };
        let batch_factor = if params.batch_size >= 256 { 1.5 } else { 1.0 };
        let mode_factor = match params.training_mode {
            TrainingMode::Sync => 1.0,
            // Gradient staleness: each additional worker adds a little.
            TrainingMode::Async => 1.0 + 0.012 * f64::from(workers),
        };
        self.base_epochs * lr_factor * batch_factor * mode_factor
    }

    /// Wall-clock runtime, in seconds, of training to the target accuracy on
    /// the given cluster (workers only; the parameter server runs on one
    /// additional VM of the same type).
    ///
    /// # Panics
    ///
    /// Panics if the cluster has zero workers (impossible by construction of
    /// [`ClusterSpec`]).
    #[must_use]
    pub fn runtime_seconds(&self, cluster: &ClusterSpec, params: &TfHyperParams) -> f64 {
        let workers = cluster.count();
        let epochs = self.epochs_to_converge(params, workers);
        let total_samples = self.samples_per_epoch * epochs;

        // Compute: total per-sample work spread over the speed-weighted cores.
        let mut compute_seconds =
            total_samples * self.ms_per_sample / 1000.0 / cluster.compute_units();
        if params.training_mode == TrainingMode::Sync {
            // Synchronization barrier: stragglers inflate every round.
            compute_seconds *= 1.0 + 0.02 * f64::from(workers).sqrt();
        }

        // Communication: every batch pushes gradients and pulls parameters
        // through the parameter server, whose NIC is the bottleneck. The
        // volume per processed sample is 2·params/batch, so small batches are
        // communication-hungry.
        let ps_bandwidth_gbps = cluster.vm().network_gbps;
        let updates = total_samples / f64::from(params.batch_size);
        let comm_gbit = updates * 2.0 * self.params_mb * 8.0 / 1000.0;
        let mut comm_seconds = comm_gbit / ps_bandwidth_gbps;
        if params.training_mode == TrainingMode::Async {
            // Asynchronous updates overlap communication with compute.
            comm_seconds *= 0.6;
        }

        // Memory pressure: the working set per worker must fit in RAM.
        let working_set_gb =
            0.5 + self.params_mb * 4.0 / 1000.0 + f64::from(params.batch_size) * 0.004;
        let ram = cluster.vm().ram_gb;
        let memory_penalty = if working_set_gb > ram {
            1.0 + 3.0 * (working_set_gb - ram) / ram
        } else {
            1.0
        };

        self.startup_seconds + (compute_seconds + comm_seconds) * memory_penalty
    }

    /// Simulates one run, including pricing and the dataset's timeout.
    ///
    /// The cluster price includes one extra VM of the same type for the
    /// parameter server, matching the paper's deployment ("One additional VM
    /// is deployed for the parameter server").
    #[must_use]
    pub fn execute(
        &self,
        cluster: &ClusterSpec,
        params: &TfHyperParams,
        timeout_seconds: Option<f64>,
    ) -> Execution {
        let runtime = self.runtime_seconds(cluster, params);
        let billed_vms = f64::from(cluster.count()) + 1.0;
        let price_per_second = cluster.vm().price_per_second() * billed_vms;
        Execution::from_runtime(runtime, price_per_second, timeout_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lynceus_cloud::Catalog;

    fn cluster(name: &str, count: u32) -> ClusterSpec {
        ClusterSpec::new(Catalog::aws().get(name).unwrap().clone(), count)
    }

    fn params(lr: f64, batch: u32, mode: TrainingMode) -> TfHyperParams {
        TfHyperParams {
            learning_rate: lr,
            batch_size: batch,
            training_mode: mode,
        }
    }

    #[test]
    fn more_compute_means_less_runtime_for_compute_bound_jobs() {
        let model = TensorflowModel::new(NetworkKind::Rnn);
        let p = params(1e-4, 256, TrainingMode::Sync);
        let small = model.runtime_seconds(&cluster("t2.2xlarge", 2), &p);
        let large = model.runtime_seconds(&cluster("t2.2xlarge", 14), &p);
        assert!(large < small, "large cluster {large} vs small {small}");
    }

    #[test]
    fn lower_learning_rates_need_more_epochs() {
        let model = TensorflowModel::new(NetworkKind::Cnn);
        let fast = model.epochs_to_converge(&params(1e-3, 16, TrainingMode::Sync), 8);
        let medium = model.epochs_to_converge(&params(1e-4, 16, TrainingMode::Sync), 8);
        let slow = model.epochs_to_converge(&params(1e-5, 16, TrainingMode::Sync), 8);
        assert!(fast < medium && medium < slow);
    }

    #[test]
    fn rnn_is_unstable_at_the_aggressive_learning_rate() {
        let rnn = TensorflowModel::new(NetworkKind::Rnn);
        let cnn = TensorflowModel::new(NetworkKind::Cnn);
        let aggressive = params(1e-3, 16, TrainingMode::Sync);
        let moderate = params(1e-4, 16, TrainingMode::Sync);
        // For the RNN the aggressive rate is worse than the moderate one...
        assert!(rnn.epochs_to_converge(&aggressive, 8) > rnn.epochs_to_converge(&moderate, 8));
        // ...while the CNN still prefers the aggressive rate.
        assert!(cnn.epochs_to_converge(&aggressive, 8) < cnn.epochs_to_converge(&moderate, 8));
    }

    #[test]
    fn async_staleness_grows_with_the_worker_count() {
        let model = TensorflowModel::new(NetworkKind::Multilayer);
        let p = params(1e-3, 16, TrainingMode::Async);
        let few = model.epochs_to_converge(&p, 4);
        let many = model.epochs_to_converge(&p, 112);
        assert!(many > few);
        // Sync convergence does not depend on the worker count.
        let p_sync = params(1e-3, 16, TrainingMode::Sync);
        assert_eq!(
            model.epochs_to_converge(&p_sync, 4),
            model.epochs_to_converge(&p_sync, 112)
        );
    }

    #[test]
    fn small_batches_pay_more_communication() {
        let model = TensorflowModel::new(NetworkKind::Cnn);
        let c = cluster("t2.xlarge", 8);
        let small_batch = model.runtime_seconds(&c, &params(1e-3, 16, TrainingMode::Sync));
        let large_batch = model.runtime_seconds(&c, &params(1e-3, 256, TrainingMode::Sync));
        // Despite needing more epochs, the large batch is faster here because
        // the parameter server stops being the bottleneck.
        assert!(large_batch < small_batch);
    }

    #[test]
    fn execution_includes_the_parameter_server_in_the_price() {
        let model = TensorflowModel::new(NetworkKind::Multilayer);
        let c = cluster("t2.medium", 4);
        let p = params(1e-3, 256, TrainingMode::Sync);
        let exec = model.execute(&c, &p, None);
        let expected_price_per_second = c.vm().price_per_second() * 5.0;
        assert!((exec.cost - exec.runtime_seconds * expected_price_per_second).abs() < 1e-9);
    }

    #[test]
    fn timeout_marks_slow_configurations() {
        let model = TensorflowModel::new(NetworkKind::Rnn);
        // Tiny cluster + tiny learning rate: hopeless within 10 minutes.
        let exec = model.execute(
            &cluster("t2.small", 8),
            &params(1e-5, 16, TrainingMode::Sync),
            Some(600.0),
        );
        assert!(exec.timed_out);
        assert_eq!(exec.runtime_seconds, 600.0);
    }

    #[test]
    fn runtime_is_always_positive_and_finite() {
        for kind in NetworkKind::all() {
            let model = TensorflowModel::new(kind);
            for lr in [1e-3, 1e-4, 1e-5] {
                for batch in [16, 256] {
                    for mode in [TrainingMode::Sync, TrainingMode::Async] {
                        let rt = model
                            .runtime_seconds(&cluster("t2.medium", 16), &params(lr, batch, mode));
                        assert!(rt.is_finite() && rt > 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn training_mode_labels_round_trip() {
        for mode in [TrainingMode::Sync, TrainingMode::Async] {
            assert_eq!(TrainingMode::from_label(mode.label()), Some(mode));
        }
        assert_eq!(TrainingMode::from_label("other"), None);
        assert_eq!(NetworkKind::Cnn.to_string(), "CNN");
        assert_eq!(TrainingMode::Sync.to_string(), "sync");
    }
}
