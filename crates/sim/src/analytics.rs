//! Batch-analytics performance model (Hadoop / Spark jobs).
//!
//! The Scout dataset (18 HiBench / spark-perf jobs) and the CherryPick
//! dataset (TPC-H, TPC-DS, TeraSort, KMeans, Regression) only vary the
//! *cluster composition* — VM family, VM size and node count — so their
//! performance model is the classic batch-analytics decomposition:
//!
//! * a serial fraction that does not speed up with more nodes (Amdahl),
//! * a parallel compute phase that scales with the speed-weighted cores,
//! * an input-scan phase bound by aggregate I/O bandwidth,
//! * a shuffle phase bound by the network, with a coordination overhead that
//!   grows with the node count,
//! * a memory-pressure penalty (spilling) when the per-node working set does
//!   not fit in RAM.
//!
//! Each of the 23 jobs gets its own [`AnalyticsJobProfile`]; the profiles are
//! chosen so that the set covers CPU-bound, memory-bound, network-bound and
//! I/O-bound behaviours ("These jobs stress differently CPU, network and
//! memory resources", Section 5.1.2).

use crate::execution::Execution;
use lynceus_cloud::ClusterSpec;
use serde::{Deserialize, Serialize};

/// Resource profile of one batch-analytics job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyticsJobProfile {
    /// Job name (e.g. `"terasort"`, `"kmeans"`).
    pub name: String,
    /// Total compute demand in reference-core seconds.
    pub compute_core_seconds: f64,
    /// Fraction of the compute that cannot be parallelized.
    pub serial_fraction: f64,
    /// Input data scanned from storage, in GB.
    pub input_gb: f64,
    /// Data shuffled across the network, in GB.
    pub shuffle_gb: f64,
    /// Working-set memory per (reference) core, in GB.
    pub memory_per_core_gb: f64,
    /// Fraction of the input scan that can be served from local storage when
    /// the VM family has fast local disks (the `i2` family).
    pub local_disk_affinity: f64,
    /// Fixed job startup/teardown seconds.
    pub startup_seconds: f64,
}

impl AnalyticsJobProfile {
    /// A CPU-dominated profile (e.g. regression, k-means iterations).
    #[must_use]
    pub fn cpu_bound(name: impl Into<String>, compute_core_seconds: f64) -> Self {
        Self {
            name: name.into(),
            compute_core_seconds,
            serial_fraction: 0.03,
            input_gb: 20.0,
            shuffle_gb: 2.0,
            memory_per_core_gb: 1.0,
            local_disk_affinity: 0.2,
            startup_seconds: 25.0,
        }
    }

    /// A shuffle-heavy profile (e.g. TeraSort, joins).
    #[must_use]
    pub fn shuffle_bound(name: impl Into<String>, shuffle_gb: f64) -> Self {
        Self {
            name: name.into(),
            compute_core_seconds: 3_000.0,
            serial_fraction: 0.02,
            input_gb: shuffle_gb,
            shuffle_gb,
            memory_per_core_gb: 1.5,
            local_disk_affinity: 0.5,
            startup_seconds: 25.0,
        }
    }

    /// A memory-hungry profile (e.g. in-memory aggregation, caching-heavy
    /// Spark SQL).
    #[must_use]
    pub fn memory_bound(name: impl Into<String>, memory_per_core_gb: f64) -> Self {
        Self {
            name: name.into(),
            compute_core_seconds: 4_000.0,
            serial_fraction: 0.05,
            input_gb: 60.0,
            shuffle_gb: 10.0,
            memory_per_core_gb,
            local_disk_affinity: 0.3,
            startup_seconds: 30.0,
        }
    }
}

/// The analytic runtime model: evaluates an [`AnalyticsJobProfile`] on a
/// cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyticsModel {
    profile: AnalyticsJobProfile,
}

impl AnalyticsModel {
    /// Wraps a job profile.
    #[must_use]
    pub fn new(profile: AnalyticsJobProfile) -> Self {
        Self { profile }
    }

    /// The wrapped profile.
    #[must_use]
    pub fn profile(&self) -> &AnalyticsJobProfile {
        &self.profile
    }

    /// Wall-clock runtime in seconds on the given cluster.
    #[must_use]
    pub fn runtime_seconds(&self, cluster: &ClusterSpec) -> f64 {
        let p = &self.profile;
        let vm = cluster.vm();
        let nodes = f64::from(cluster.count());

        // Serial phase: runs on a single core of this family.
        let serial = p.compute_core_seconds * p.serial_fraction / vm.relative_core_speed;

        // Parallel phase.
        let parallel_work = p.compute_core_seconds * (1.0 - p.serial_fraction);
        let mut parallel = parallel_work / cluster.compute_units();

        // Memory pressure: spilling slows the parallel phase down.
        let needed_per_node = p.memory_per_core_gb * f64::from(vm.vcpus);
        if needed_per_node > vm.ram_gb {
            let deficit = (needed_per_node - vm.ram_gb) / vm.ram_gb;
            parallel *= 1.0 + 2.5 * deficit;
        }

        // Input scan: remote reads over the network unless the family has
        // fast local storage (i2) and the job can exploit it.
        let local_fraction = if vm.family == lynceus_cloud::VmFamily::I2 {
            p.local_disk_affinity
        } else {
            0.0
        };
        let remote_input_gb = p.input_gb * (1.0 - local_fraction);
        let scan = remote_input_gb * 8.0 / cluster.total_network_gbps();

        // Shuffle: all-to-all exchange plus a coordination overhead that
        // grows with the number of nodes.
        let shuffle =
            p.shuffle_gb * 8.0 / cluster.total_network_gbps() * (1.0 + 0.04 * nodes.sqrt());

        p.startup_seconds + serial + parallel + scan + shuffle
    }

    /// Simulates one run on the cluster, with per-second billing and an
    /// optional timeout.
    #[must_use]
    pub fn execute(&self, cluster: &ClusterSpec, timeout_seconds: Option<f64>) -> Execution {
        let runtime = self.runtime_seconds(cluster);
        Execution::from_runtime(runtime, cluster.price_per_second(), timeout_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lynceus_cloud::Catalog;

    fn cluster(name: &str, count: u32) -> ClusterSpec {
        ClusterSpec::new(Catalog::aws().get(name).unwrap().clone(), count)
    }

    #[test]
    fn cpu_bound_jobs_prefer_compute_optimized_vms() {
        let model = AnalyticsModel::new(AnalyticsJobProfile::cpu_bound("regression", 20_000.0));
        let on_c4 = model.runtime_seconds(&cluster("c4.xlarge", 8));
        let on_r3 = model.runtime_seconds(&cluster("r3.xlarge", 8));
        assert!(on_c4 < on_r3, "c4 {on_c4} should beat r3 {on_r3}");
    }

    #[test]
    fn memory_bound_jobs_prefer_memory_optimized_vms() {
        let model = AnalyticsModel::new(AnalyticsJobProfile::memory_bound("sql-agg", 5.0));
        let on_c4 = model.runtime_seconds(&cluster("c4.xlarge", 8));
        let on_r4 = model.runtime_seconds(&cluster("r4.xlarge", 8));
        assert!(on_r4 < on_c4, "r4 {on_r4} should beat c4 {on_c4}");
    }

    #[test]
    fn disk_heavy_jobs_benefit_from_local_storage() {
        let mut profile = AnalyticsJobProfile::shuffle_bound("terasort", 100.0);
        profile.local_disk_affinity = 0.8;
        let model = AnalyticsModel::new(profile);
        let on_i2 = model.runtime_seconds(&cluster("i2.xlarge", 8));
        let on_r3 = model.runtime_seconds(&cluster("r3.xlarge", 8));
        assert!(on_i2 < on_r3, "i2 {on_i2} should beat r3 {on_r3}");
    }

    #[test]
    fn more_nodes_reduce_runtime_but_with_diminishing_returns() {
        let model = AnalyticsModel::new(AnalyticsJobProfile::cpu_bound("kmeans", 40_000.0));
        let r4 = model.runtime_seconds(&cluster("m4.xlarge", 4));
        let r16 = model.runtime_seconds(&cluster("m4.xlarge", 16));
        let r48 = model.runtime_seconds(&cluster("m4.xlarge", 48));
        assert!(r16 < r4);
        assert!(r48 < r16);
        // Diminishing returns: the second 4x scaling gains less than the first.
        assert!((r4 - r16) > (r16 - r48));
    }

    #[test]
    fn amdahl_limits_the_speedup() {
        let mut profile = AnalyticsJobProfile::cpu_bound("serial-ish", 10_000.0);
        profile.serial_fraction = 0.5;
        let model = AnalyticsModel::new(profile);
        let small = model.runtime_seconds(&cluster("m4.large", 4));
        let huge = model.runtime_seconds(&cluster("m4.large", 48));
        // Even a 12x bigger cluster cannot get past the serial half.
        assert!(huge > small / 12.0 * 4.0);
    }

    #[test]
    fn memory_pressure_slows_down_undersized_vms() {
        let profile = AnalyticsJobProfile::memory_bound("cache-heavy", 6.0);
        let model = AnalyticsModel::new(profile);
        // c4.2xlarge has 15 GB for 8 cores: 1.9 GB/core < 6 GB/core needed.
        let starved = model.runtime_seconds(&cluster("c4.2xlarge", 8));
        // r4.2xlarge has 61 GB for 8 cores: 7.6 GB/core, no spilling.
        let comfortable = model.runtime_seconds(&cluster("r4.2xlarge", 8));
        assert!(starved > comfortable * 1.3);
    }

    #[test]
    fn execution_uses_cluster_pricing_and_timeout() {
        let model = AnalyticsModel::new(AnalyticsJobProfile::cpu_bound("quick", 1_000.0));
        let c = cluster("m4.large", 4);
        let exec = model.execute(&c, None);
        assert!((exec.cost - exec.runtime_seconds * c.price_per_second()).abs() < 1e-9);
        let strict = model.execute(&c, Some(1.0));
        assert!(strict.timed_out);
    }

    #[test]
    fn profile_constructors_set_their_signature_resources() {
        let cpu = AnalyticsJobProfile::cpu_bound("a", 1.0);
        let shuffle = AnalyticsJobProfile::shuffle_bound("b", 200.0);
        let memory = AnalyticsJobProfile::memory_bound("c", 4.0);
        assert!(shuffle.shuffle_gb > cpu.shuffle_gb);
        assert!(memory.memory_per_core_gb > cpu.memory_per_core_gb);
        assert_eq!(cpu.name, "a");
    }
}
