//! Analytic job-performance simulators.
//!
//! The paper evaluates Lynceus on *measured* datasets: every configuration of
//! every job was actually run on EC2 and its runtime recorded, and the
//! optimizers are then evaluated by replaying those lookup tables. The
//! measured traces are not available to this reproduction, so this crate
//! provides analytic performance models that generate equivalent lookup
//! tables with the same qualitative structure (documented in `DESIGN.md`):
//!
//! * [`tensorflow`] — a parameter-server model of distributed training
//!   (compute, communication, convergence as a function of the
//!   hyper-parameters of Table 1), used for the CNN / RNN / Multilayer jobs;
//! * [`analytics`] — a batch-analytics model (Amdahl fraction, shuffle,
//!   memory pressure, disk) used for the 18 Scout jobs and the 5 CherryPick
//!   jobs;
//! * [`noise`] — multiplicative measurement noise, so datasets can model
//!   cloud performance variability;
//! * [`execution`] — the common result type (`runtime`, `cost`, timeout
//!   flag);
//! * [`turbulence`] — a [`TurbulentOracle`] wrapper that injects the
//!   deterministic fault plans of `lynceus_core::faults` (revocations,
//!   transient errors, mid-step panics, price shocks) into any oracle, for
//!   exercising the service's retry and checkpoint-recovery machinery.
//!
//! The optimizers never see these models: they only observe the resulting
//! `configuration → (runtime, cost)` tables, exactly as they would observe
//! measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod execution;
pub mod noise;
pub mod tensorflow;
pub mod turbulence;

pub use analytics::{AnalyticsJobProfile, AnalyticsModel};
pub use execution::Execution;
pub use noise::NoiseModel;
pub use tensorflow::{NetworkKind, TensorflowModel, TfHyperParams, TrainingMode};
pub use turbulence::TurbulentOracle;
