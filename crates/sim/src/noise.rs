//! Measurement-noise model.
//!
//! Cloud measurements are noisy: multi-tenant interference, network jitter
//! and placement variability routinely perturb runtimes by a few percent.
//! The datasets of the paper were measured once per configuration; to
//! reproduce that, the dataset generators draw one multiplicative noise
//! factor per configuration from this model (deterministically, from the
//! dataset seed), freeze it into the lookup table, and the optimizers then
//! see a fixed — but realistically wobbly — cost surface.

use lynceus_math::rng::SeededRng;
use serde::{Deserialize, Serialize};

/// Multiplicative log-normal noise with a configurable coefficient of
/// variation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Approximate coefficient of variation of the noise factor (e.g. `0.05`
    /// for ±5% typical deviation).
    pub coefficient_of_variation: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self {
            coefficient_of_variation: 0.05,
        }
    }
}

impl NoiseModel {
    /// A noiseless model (factor always exactly 1).
    #[must_use]
    pub fn none() -> Self {
        Self {
            coefficient_of_variation: 0.0,
        }
    }

    /// Creates a model with the given coefficient of variation.
    ///
    /// # Panics
    ///
    /// Panics if `cv` is negative or not finite.
    #[must_use]
    pub fn with_cv(cv: f64) -> Self {
        assert!(cv >= 0.0 && cv.is_finite(), "cv must be finite and >= 0");
        Self {
            coefficient_of_variation: cv,
        }
    }

    /// Draws one multiplicative noise factor (mean ≈ 1).
    ///
    /// The factor is log-normal so it is always strictly positive.
    #[must_use]
    pub fn factor(&self, rng: &mut SeededRng) -> f64 {
        if self.coefficient_of_variation <= 0.0 {
            return 1.0;
        }
        // For a log-normal with parameters (mu, sigma), the mean is
        // exp(mu + sigma²/2) and the CV is sqrt(exp(sigma²) - 1). Solve for a
        // unit mean and the requested CV.
        let cv2 = self.coefficient_of_variation * self.coefficient_of_variation;
        let sigma2 = (1.0 + cv2).ln();
        let mu = -0.5 * sigma2;
        rng.lognormal(mu, sigma2.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cv_means_no_noise() {
        let mut rng = SeededRng::new(1);
        let model = NoiseModel::none();
        for _ in 0..10 {
            assert_eq!(model.factor(&mut rng), 1.0);
        }
    }

    #[test]
    fn factors_are_positive_and_near_one() {
        let mut rng = SeededRng::new(2);
        let model = NoiseModel::with_cv(0.05);
        for _ in 0..1000 {
            let f = model.factor(&mut rng);
            assert!(f > 0.0);
            assert!(f > 0.7 && f < 1.4, "factor {f} is implausibly far from 1");
        }
    }

    #[test]
    fn empirical_mean_and_cv_match_the_request() {
        let mut rng = SeededRng::new(3);
        let cv = 0.1;
        let model = NoiseModel::with_cv(cv);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| model.factor(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!(
            (var.sqrt() / mean - cv).abs() < 0.01,
            "cv {}",
            var.sqrt() / mean
        );
    }

    #[test]
    fn default_model_has_five_percent_cv() {
        assert!((NoiseModel::default().coefficient_of_variation - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cv must be finite")]
    fn negative_cv_panics() {
        let _ = NoiseModel::with_cv(-0.1);
    }
}
