//! Deterministic turbulence: wraps any [`CostOracle`] in a seeded storm.
//!
//! [`TurbulentOracle`] consumes a [`FaultPlan`] (see [`lynceus_core::faults`])
//! and injects its scheduled failures into the oracle's fallible channel:
//! revocations and transient errors surface as [`OracleFault`]s for the
//! service's retry policy, panics unwind mid-step to exercise checkpoint
//! recovery, and price shocks multiply every later run's realized cost.
//! Faults are keyed by **oracle call index** — the only clock the wrapper
//! knows — so the same `(oracle, plan)` pair produces the same storm under
//! any scheduler interleave, thread count, or kill-and-resume split.
//!
//! Two pieces of state with deliberately different lifetimes:
//!
//! * the **durable cursor** (call count, accumulated price multiplier) rides
//!   inside session checkpoints via [`CostOracle::durable_state`], so a
//!   restored session replays prices bit-identically;
//! * the **fired set** is in-memory only: when the service restores a
//!   panicked session from its checkpoint, the cursor rewinds to the
//!   decision boundary and the panicking call index is re-issued — the fired
//!   set is what makes the planned panic a *one-shot* fault instead of an
//!   infinite crash loop.

use lynceus_core::codec::{Decoder, Encoder};
use lynceus_core::faults::{FaultKind, FaultPlan, FaultProfile, OracleFault};
use lynceus_core::{CostOracle, Observation};
use lynceus_space::{ConfigId, ConfigSpace};
use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The checkpointed part of the wrapper's state.
#[derive(Debug, Clone, Copy)]
struct Cursor {
    /// Calls the wrapped oracle has received (faulted calls included).
    calls: u64,
    /// Product of every price shock fired so far.
    price_multiplier: f64,
}

/// A [`CostOracle`] wrapper that injects the faults of a [`FaultPlan`].
/// See the [module docs](self) for the determinism contract.
pub struct TurbulentOracle<O> {
    inner: O,
    plan: FaultPlan,
    cursor: Mutex<Cursor>,
    /// Call indices whose fault already fired in this process (one-shot
    /// semantics; intentionally *not* durable — see the module docs).
    fired: Mutex<BTreeSet<u64>>,
}

/// Planned panics poison these mutexes by design; the state under them is
/// always consistent (updated before the unwind), so recover the guard.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<O: CostOracle> TurbulentOracle<O> {
    /// Wraps an oracle with a fault plan.
    #[must_use]
    pub fn new(inner: O, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            cursor: Mutex::new(Cursor {
                calls: 0,
                price_multiplier: 1.0,
            }),
            fired: Mutex::new(BTreeSet::new()),
        }
    }

    /// Wraps an oracle with a seeded storm ([`FaultPlan::seeded`]).
    #[must_use]
    pub fn seeded(inner: O, seed: u64, profile: &FaultProfile, horizon: u64) -> Self {
        Self::new(inner, FaultPlan::seeded(seed, profile, horizon))
    }

    /// The fault schedule.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Calls received so far (faulted calls included).
    #[must_use]
    pub fn calls(&self) -> u64 {
        lock(&self.cursor).calls
    }

    /// The accumulated spot-price multiplier.
    #[must_use]
    pub fn price_multiplier(&self) -> f64 {
        lock(&self.cursor).price_multiplier
    }

    /// Unwraps the inner oracle.
    #[must_use]
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: CostOracle> CostOracle for TurbulentOracle<O> {
    fn space(&self) -> &ConfigSpace {
        self.inner.space()
    }

    fn candidates(&self) -> Vec<ConfigId> {
        self.inner.candidates()
    }

    /// Infallible channel: turbulence is meaningless without a retry path,
    /// so planned faults reaching `run` escalate to a panic (which the
    /// service still contains to the session).
    fn run(&self, id: ConfigId) -> Observation {
        self.try_run(id)
            .unwrap_or_else(|fault| panic!("unrecoverable turbulence: {fault}"))
    }

    fn try_run(&self, id: ConfigId) -> Result<Observation, OracleFault> {
        let call = {
            let mut cursor = lock(&self.cursor);
            let call = cursor.calls;
            cursor.calls += 1;
            call
        };
        // `insert` is false when this index already fired: the fault is
        // spent and the call proceeds clean.
        let fault = self
            .plan
            .fault_at(call)
            .filter(|_| lock(&self.fired).insert(call));
        if let Some(kind) = fault {
            match kind {
                FaultKind::Revocation => return Err(OracleFault::Revoked),
                FaultKind::TransientError => {
                    return Err(OracleFault::Transient(format!(
                        "injected turbulence at oracle call {call}"
                    )));
                }
                FaultKind::Panic => panic!("injected mid-step panic at oracle call {call}"),
                FaultKind::PriceShock(factor) => {
                    lock(&self.cursor).price_multiplier *= factor;
                }
            }
        }
        let mut observation = self.inner.try_run(id)?;
        observation.cost *= lock(&self.cursor).price_multiplier;
        Ok(observation)
    }

    fn durable_state(&self) -> Option<Vec<u8>> {
        let cursor = *lock(&self.cursor);
        let mut enc = Encoder::new();
        enc.put_u64(cursor.calls);
        enc.put_f64(cursor.price_multiplier);
        Some(enc.finish())
    }

    fn restore_durable_state(&self, bytes: &[u8]) -> bool {
        let mut dec = Decoder::new(bytes);
        let (Ok(calls), Ok(price_multiplier)) = (dec.get_u64(), dec.get_f64()) else {
            return false;
        };
        if !(dec.is_finished() && price_multiplier.is_finite() && price_multiplier > 0.0) {
            return false;
        }
        *lock(&self.cursor) = Cursor {
            calls,
            price_multiplier,
        };
        true
    }

    /// The quoted on-demand rate is forwarded unshocked: shocks hit the
    /// *realized* cost of later runs, not the constraint arithmetic.
    fn price_rate(&self, id: ConfigId) -> f64 {
        self.inner.price_rate(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lynceus_core::TableOracle;
    use lynceus_space::SpaceBuilder;

    fn flat_oracle() -> TableOracle {
        let space = SpaceBuilder::new()
            .numeric("x", (0..4).map(f64::from))
            .build();
        TableOracle::from_fn(space, 1.0, |f| 10.0 + f[0])
    }

    fn any_id(oracle: &TableOracle) -> ConfigId {
        oracle.candidates()[0]
    }

    #[test]
    fn faults_fire_at_their_call_indices_and_counting_includes_faulted_calls() {
        let plan = FaultPlan::new()
            .with_fault(1, FaultKind::Revocation)
            .with_fault(2, FaultKind::TransientError);
        let oracle = TurbulentOracle::new(flat_oracle(), plan);
        let id = any_id(&flat_oracle());
        assert!(oracle.try_run(id).is_ok()); // call 0
        assert_eq!(oracle.try_run(id), Err(OracleFault::Revoked)); // call 1
        let transient = oracle.try_run(id); // call 2
        assert!(
            matches!(&transient, Err(OracleFault::Transient(m)) if m.contains("call 2")),
            "unexpected: {transient:?}"
        );
        assert!(oracle.try_run(id).is_ok()); // call 3: skies clear
        assert_eq!(oracle.calls(), 4);
    }

    #[test]
    fn price_shocks_multiply_every_later_cost() {
        let plan = FaultPlan::new().with_fault(1, FaultKind::PriceShock(2.0));
        let oracle = TurbulentOracle::new(flat_oracle(), plan);
        let id = any_id(&flat_oracle());
        let before = oracle.try_run(id).unwrap().cost;
        let shocked = oracle.try_run(id).unwrap().cost; // the shocked call completes
        let after = oracle.try_run(id).unwrap().cost;
        assert!((shocked - 2.0 * before).abs() < 1e-12);
        assert!((after - 2.0 * before).abs() < 1e-12);
        assert_eq!(oracle.price_multiplier(), 2.0);
        // The quoted rate is unshocked.
        assert_eq!(oracle.price_rate(id), 1.0);
    }

    #[test]
    fn planned_panics_are_one_shot() {
        let plan = FaultPlan::new().with_fault(0, FaultKind::Panic);
        let oracle = TurbulentOracle::new(flat_oracle(), plan);
        let id = any_id(&flat_oracle());
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = oracle.try_run(id);
        }));
        assert!(unwound.is_err(), "call 0 must panic as planned");
        // The service rewinds the durable cursor on restore; re-issuing the
        // same call index must now run clean instead of crash-looping.
        assert!(oracle.restore_durable_state(&oracle_state_with_calls(&oracle, 0)));
        assert!(oracle.try_run(id).is_ok());
    }

    /// Durable state with the call counter rewound (what a checkpoint
    /// restore effectively does).
    fn oracle_state_with_calls<O: CostOracle>(oracle: &TurbulentOracle<O>, calls: u64) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u64(calls);
        enc.put_f64(lock(&oracle.cursor).price_multiplier);
        enc.finish()
    }

    #[test]
    fn durable_state_round_trips_and_garbage_is_rejected() {
        let plan = FaultPlan::new().with_fault(1, FaultKind::PriceShock(1.5));
        let oracle = TurbulentOracle::new(flat_oracle(), plan.clone());
        let id = any_id(&flat_oracle());
        let _ = oracle.try_run(id);
        let _ = oracle.try_run(id);
        let state = oracle.durable_state().expect("turbulence is stateful");

        let twin = TurbulentOracle::new(flat_oracle(), plan);
        assert!(twin.restore_durable_state(&state));
        assert_eq!(twin.calls(), 2);
        assert_eq!(twin.price_multiplier(), 1.5);

        assert!(!twin.restore_durable_state(&[1, 2, 3]), "truncated");
        let mut enc = Encoder::new();
        enc.put_u64(0);
        enc.put_f64(-1.0);
        assert!(
            !twin.restore_durable_state(&enc.finish()),
            "non-positive multipliers are rejected"
        );
        assert_eq!(twin.calls(), 2, "rejected restores leave the cursor alone");
    }

    #[test]
    fn same_plan_same_storm() {
        let profile = FaultProfile::default();
        let a = TurbulentOracle::seeded(flat_oracle(), 9, &profile, 100);
        let b = TurbulentOracle::seeded(flat_oracle(), 9, &profile, 100);
        assert_eq!(a.plan(), b.plan());
        let id = any_id(&flat_oracle());
        for _ in 0..100 {
            // Skip planned panics for the comparison: catching both sides
            // keeps the call counters in lock-step.
            let ra = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.try_run(id)));
            let rb = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.try_run(id)));
            match (ra, rb) {
                (Ok(ra), Ok(rb)) => assert_eq!(ra, rb),
                (Err(_), Err(_)) => {}
                _ => panic!("the storms diverged"),
            }
        }
        assert_eq!(a.calls(), b.calls());
        assert_eq!(a.price_multiplier(), b.price_multiplier());
    }

    #[test]
    fn the_infallible_channel_escalates_faults_to_panics() {
        let plan = FaultPlan::new().with_fault(0, FaultKind::Revocation);
        let oracle = TurbulentOracle::new(flat_oracle(), plan);
        let id = any_id(&flat_oracle());
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| oracle.run(id)));
        assert!(unwound.is_err());
        assert_eq!(oracle.into_inner().price_rate(id), 1.0);
    }
}
