//! Property-based tests for the configuration-space crate.

use lynceus_space::{ConfigSpace, Domain};
use proptest::prelude::*;

/// Strategy producing a valid, non-degenerate configuration space.
fn arb_space() -> impl Strategy<Value = ConfigSpace> {
    proptest::collection::vec(1usize..8, 1..5).prop_map(|cards| {
        let dims = cards
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                if i % 2 == 0 {
                    Domain::numeric(format!("num{i}"), (0..c).map(|l| (l as f64 + 1.0) * 4.0))
                } else {
                    Domain::categorical(format!("cat{i}"), (0..c).map(|l| format!("v{l}")))
                }
            })
            .collect();
        ConfigSpace::new(dims).expect("generated space is valid")
    })
}

proptest! {
    #[test]
    fn size_matches_product_of_cardinalities(space in arb_space()) {
        let product: usize = space.cardinalities().iter().product();
        prop_assert_eq!(space.len(), product);
    }

    #[test]
    fn every_id_round_trips(space in arb_space()) {
        for id in 0..space.len() {
            let config = space.config(id);
            prop_assert_eq!(space.id_of(&config), Some(id));
            // levels are always in range
            for (level, card) in config.levels().iter().zip(space.cardinalities()) {
                prop_assert!(*level < card);
            }
        }
    }

    #[test]
    fn features_have_one_entry_per_dimension(space in arb_space()) {
        for id in 0..space.len() {
            let features = space.features(&space.config(id));
            prop_assert_eq!(features.len(), space.dims());
            prop_assert!(features.iter().all(|f| f.is_finite()));
        }
    }

    #[test]
    fn values_round_trip_through_config_from_values(space in arb_space()) {
        for id in 0..space.len().min(64) {
            let config = space.config(id);
            let named = space.values(&config);
            let named_refs: Vec<(&str, lynceus_space::Value)> = named
                .iter()
                .map(|(name, value)| (name.as_str(), value.clone()))
                .collect();
            let rebuilt = space.config_from_values(&named_refs).unwrap();
            prop_assert_eq!(rebuilt, config);
        }
    }

    #[test]
    fn restriction_is_a_subset_and_respects_the_predicate(space in arb_space()) {
        let kept = space.restrict(|c| c.level(0) == 0);
        prop_assert!(kept.len() <= space.len());
        for id in kept {
            prop_assert_eq!(space.config_of(id).level(0), 0);
        }
    }
}
