//! Property-based tests for the configuration-space crate.
//!
//! The environment has no registry access, so instead of `proptest` these
//! tests enumerate a deterministic family of randomized spaces.

use lynceus_space::{ConfigSpace, Domain};

/// A deterministic family of valid, non-degenerate configuration spaces
/// mixing numeric and categorical dimensions.
fn space_family() -> Vec<ConfigSpace> {
    let shapes: &[&[usize]] = &[
        &[1],
        &[2],
        &[7],
        &[1, 1],
        &[3, 4],
        &[2, 5, 3],
        &[4, 1, 6],
        &[2, 2, 2, 2],
        &[5, 3, 2, 4],
        &[3, 7, 1, 2],
    ];
    shapes
        .iter()
        .map(|cards| {
            let dims = cards
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    if i % 2 == 0 {
                        Domain::numeric(format!("num{i}"), (0..c).map(|l| (l as f64 + 1.0) * 4.0))
                    } else {
                        Domain::categorical(format!("cat{i}"), (0..c).map(|l| format!("v{l}")))
                    }
                })
                .collect();
            ConfigSpace::new(dims).expect("generated space is valid")
        })
        .collect()
}

#[test]
fn size_matches_product_of_cardinalities() {
    for space in space_family() {
        let product: usize = space.cardinalities().iter().product();
        assert_eq!(space.len(), product);
    }
}

#[test]
fn every_id_round_trips() {
    for space in space_family() {
        for id in 0..space.len() {
            let config = space.config(id);
            assert_eq!(space.id_of(&config), Some(id));
            // Levels are always in range.
            for (level, card) in config.levels().iter().zip(space.cardinalities()) {
                assert!(*level < card);
            }
        }
    }
}

#[test]
fn features_have_one_entry_per_dimension() {
    for space in space_family() {
        for id in 0..space.len() {
            let features = space.features(&space.config(id));
            assert_eq!(features.len(), space.dims());
            assert!(features.iter().all(|f| f.is_finite()));
        }
    }
}

#[test]
fn values_round_trip_through_config_from_values() {
    for space in space_family() {
        for id in 0..space.len().min(64) {
            let config = space.config(id);
            let named = space.values(&config);
            let named_refs: Vec<(&str, lynceus_space::Value)> = named
                .iter()
                .map(|(name, value)| (name.as_str(), value.clone()))
                .collect();
            let rebuilt = space.config_from_values(&named_refs).unwrap();
            assert_eq!(rebuilt, config);
        }
    }
}

#[test]
fn restriction_is_a_subset_and_respects_the_predicate() {
    for space in space_family() {
        let kept = space.restrict(|c| c.level(0) == 0);
        assert!(kept.len() <= space.len());
        for id in kept {
            assert_eq!(space.config_of(id).level(0), 0);
        }
    }
}
