//! Configurations: points of the search grid.

use serde::{Deserialize, Serialize};

/// Opaque identifier of a configuration within its [`ConfigSpace`].
///
/// Ids enumerate the Cartesian grid in row-major order (the last declared
/// dimension varies fastest), so `0..space.len()` covers the whole space.
///
/// [`ConfigSpace`]: crate::ConfigSpace
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ConfigId(pub usize);

impl ConfigId {
    /// The raw index value.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ConfigId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<usize> for ConfigId {
    fn from(value: usize) -> Self {
        ConfigId(value)
    }
}

/// A configuration: one level index per dimension of the space.
///
/// Configurations are meaningful only relative to the [`ConfigSpace`] that
/// produced them; the space converts them to human-readable values and to
/// feature vectors for the surrogate model.
///
/// [`ConfigSpace`]: crate::ConfigSpace
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Config {
    levels: Vec<usize>,
}

impl Config {
    /// Creates a configuration from per-dimension level indices.
    #[must_use]
    pub fn new(levels: Vec<usize>) -> Self {
        Self { levels }
    }

    /// Per-dimension level indices.
    #[must_use]
    pub fn levels(&self) -> &[usize] {
        &self.levels
    }

    /// Level index of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    #[must_use]
    pub fn level(&self, dim: usize) -> usize {
        self.levels[dim]
    }

    /// Number of dimensions.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.levels.len()
    }
}

impl From<Vec<usize>> for Config {
    fn from(levels: Vec<usize>) -> Self {
        Config::new(levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_id_display_and_conversions() {
        let id = ConfigId::from(17usize);
        assert_eq!(id.index(), 17);
        assert_eq!(id.to_string(), "#17");
        assert!(ConfigId(3) < ConfigId(4));
    }

    #[test]
    fn config_accessors() {
        let c = Config::from(vec![0, 2, 1]);
        assert_eq!(c.dims(), 3);
        assert_eq!(c.level(1), 2);
        assert_eq!(c.levels(), &[0, 2, 1]);
    }
}
