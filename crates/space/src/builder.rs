//! Ergonomic construction of configuration spaces.

use crate::domain::Domain;
use crate::space::ConfigSpace;

/// Builder for [`ConfigSpace`].
///
/// # Example
///
/// ```
/// use lynceus_space::SpaceBuilder;
///
/// let space = SpaceBuilder::new()
///     .numeric("learning_rate", [1e-3, 1e-4, 1e-5])
///     .numeric("batch_size", [16.0, 256.0])
///     .categorical("training_mode", ["sync", "async"])
///     .build();
/// assert_eq!(space.len(), 12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpaceBuilder {
    dimensions: Vec<Domain>,
}

impl SpaceBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a discrete numeric dimension.
    #[must_use]
    pub fn numeric(
        mut self,
        name: impl Into<String>,
        levels: impl IntoIterator<Item = f64>,
    ) -> Self {
        self.dimensions.push(Domain::numeric(name, levels));
        self
    }

    /// Adds a categorical dimension.
    #[must_use]
    pub fn categorical<S: Into<String>>(
        mut self,
        name: impl Into<String>,
        labels: impl IntoIterator<Item = S>,
    ) -> Self {
        self.dimensions.push(Domain::categorical(name, labels));
        self
    }

    /// Adds an already-constructed dimension.
    #[must_use]
    pub fn dimension(mut self, domain: Domain) -> Self {
        self.dimensions.push(domain);
        self
    }

    /// Builds the space.
    ///
    /// # Panics
    ///
    /// Panics if no dimension was added or two dimensions share a name; use
    /// [`SpaceBuilder::try_build`] to handle these cases as errors.
    #[must_use]
    pub fn build(self) -> ConfigSpace {
        self.try_build().expect("invalid configuration space")
    }

    /// Builds the space, reporting construction problems as errors.
    ///
    /// # Errors
    ///
    /// See [`ConfigSpace::new`].
    pub fn try_build(self) -> Result<ConfigSpace, crate::space::SpaceError> {
        ConfigSpace::new(self.dimensions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpaceError;

    #[test]
    fn builder_constructs_the_expected_grid() {
        let space = SpaceBuilder::new()
            .numeric("a", [1.0, 2.0])
            .categorical("b", ["x", "y", "z"])
            .build();
        assert_eq!(space.len(), 6);
        assert_eq!(space.dimensions()[1].name(), "b");
    }

    #[test]
    fn builder_accepts_prebuilt_dimensions() {
        let space = SpaceBuilder::new()
            .dimension(Domain::numeric("a", [1.0]))
            .dimension(Domain::categorical("b", ["u"]))
            .build();
        assert_eq!(space.len(), 1);
    }

    #[test]
    fn try_build_reports_duplicates() {
        let err = SpaceBuilder::new()
            .numeric("a", [1.0])
            .numeric("a", [2.0])
            .try_build()
            .unwrap_err();
        assert_eq!(err, SpaceError::DuplicateDimension("a".into()));
    }

    #[test]
    #[should_panic(expected = "invalid configuration space")]
    fn build_panics_on_empty_builder() {
        let _ = SpaceBuilder::new().build();
    }
}
