//! The configuration grid.

use crate::config::{Config, ConfigId};
use crate::domain::{Domain, Value};
use serde::{Deserialize, Serialize};

/// Errors produced when building or querying a configuration space.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpaceError {
    /// The space was built with no dimensions.
    Empty,
    /// Two dimensions share the same name.
    DuplicateDimension(String),
    /// A configuration refers to a dimension or level that does not exist.
    InvalidConfig(String),
}

impl std::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpaceError::Empty => write!(f, "configuration space has no dimensions"),
            SpaceError::DuplicateDimension(name) => {
                write!(f, "duplicate dimension name `{name}`")
            }
            SpaceError::InvalidConfig(reason) => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for SpaceError {}

/// A finite Cartesian configuration grid.
///
/// The grid is the full Cartesian product of its dimensions' levels; ids
/// enumerate it in row-major order. Datasets with irregular spaces (e.g. the
/// Scout grid, where `xlarge` clusters stop at 24 instances) restrict the grid
/// with [`ConfigSpace::restrict`] and run the optimizer over the surviving
/// ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigSpace {
    dimensions: Vec<Domain>,
    /// Row-major strides, same length as `dimensions`.
    strides: Vec<usize>,
    size: usize,
}

impl ConfigSpace {
    /// Builds a space from its dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::Empty`] if no dimension is given and
    /// [`SpaceError::DuplicateDimension`] if two dimensions share a name.
    pub fn new(dimensions: Vec<Domain>) -> Result<Self, SpaceError> {
        if dimensions.is_empty() {
            return Err(SpaceError::Empty);
        }
        for (i, d) in dimensions.iter().enumerate() {
            if dimensions[..i].iter().any(|other| other.name() == d.name()) {
                return Err(SpaceError::DuplicateDimension(d.name().to_owned()));
            }
        }
        let mut strides = vec![1usize; dimensions.len()];
        for i in (0..dimensions.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dimensions[i + 1].cardinality();
        }
        let size = dimensions.iter().map(Domain::cardinality).product();
        Ok(Self {
            dimensions,
            strides,
            size,
        })
    }

    /// Number of configurations in the full grid.
    #[must_use]
    pub fn len(&self) -> usize {
        self.size
    }

    /// True if the grid is empty (never the case for a successfully
    /// constructed space, but required by convention).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Number of dimensions.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dimensions.len()
    }

    /// The dimensions of the grid, in declaration order.
    #[must_use]
    pub fn dimensions(&self) -> &[Domain] {
        &self.dimensions
    }

    /// Cardinality of each dimension, in declaration order.
    #[must_use]
    pub fn cardinalities(&self) -> Vec<usize> {
        self.dimensions.iter().map(Domain::cardinality).collect()
    }

    /// The configuration with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= self.len()`.
    #[must_use]
    pub fn config(&self, id: usize) -> Config {
        assert!(
            id < self.size,
            "configuration id {id} out of range ({})",
            self.size
        );
        let levels = self
            .strides
            .iter()
            .zip(&self.dimensions)
            .map(|(&stride, dim)| (id / stride) % dim.cardinality())
            .collect();
        Config::new(levels)
    }

    /// The configuration with the given [`ConfigId`].
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn config_of(&self, id: ConfigId) -> Config {
        self.config(id.index())
    }

    /// The id of a configuration, if it belongs to the grid.
    #[must_use]
    pub fn id_of(&self, config: &Config) -> Option<usize> {
        if config.dims() != self.dims() {
            return None;
        }
        let mut id = 0usize;
        for ((&level, stride), dim) in config
            .levels()
            .iter()
            .zip(&self.strides)
            .zip(&self.dimensions)
        {
            if level >= dim.cardinality() {
                return None;
            }
            id += level * stride;
        }
        Some(id)
    }

    /// Builds a configuration from named values.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::InvalidConfig`] if a dimension is missing, a
    /// name is unknown, or a value is not one of the dimension's levels.
    pub fn config_from_values(&self, values: &[(&str, Value)]) -> Result<Config, SpaceError> {
        let mut levels = vec![usize::MAX; self.dims()];
        for (name, value) in values {
            let dim_index = self
                .dimensions
                .iter()
                .position(|d| d.name() == *name)
                .ok_or_else(|| SpaceError::InvalidConfig(format!("unknown dimension `{name}`")))?;
            let level = self.dimensions[dim_index].level_of(value).ok_or_else(|| {
                SpaceError::InvalidConfig(format!("value `{value}` not in dimension `{name}`"))
            })?;
            levels[dim_index] = level;
        }
        if let Some(missing) = levels.iter().position(|&l| l == usize::MAX) {
            return Err(SpaceError::InvalidConfig(format!(
                "dimension `{}` not specified",
                self.dimensions[missing].name()
            )));
        }
        Ok(Config::new(levels))
    }

    /// The human-readable values of a configuration, in dimension order.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has the wrong number of dimensions or an
    /// out-of-range level.
    #[must_use]
    pub fn values(&self, config: &Config) -> Vec<(String, Value)> {
        assert_eq!(config.dims(), self.dims(), "dimension count mismatch");
        config
            .levels()
            .iter()
            .zip(&self.dimensions)
            .map(|(&level, dim)| (dim.name().to_owned(), dim.value(level)))
            .collect()
    }

    /// The feature vector of a configuration, as consumed by surrogate models.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has the wrong number of dimensions or an
    /// out-of-range level.
    #[must_use]
    pub fn features(&self, config: &Config) -> Vec<f64> {
        assert_eq!(config.dims(), self.dims(), "dimension count mismatch");
        config
            .levels()
            .iter()
            .zip(&self.dimensions)
            .map(|(&level, dim)| dim.feature(level))
            .collect()
    }

    /// The feature vector of the configuration with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn features_of(&self, id: ConfigId) -> Vec<f64> {
        self.features(&self.config_of(id))
    }

    /// Iterates over every configuration id of the full grid.
    pub fn ids(&self) -> impl Iterator<Item = ConfigId> + '_ {
        (0..self.size).map(ConfigId)
    }

    /// Iterates over every configuration of the full grid.
    pub fn iter(&self) -> impl Iterator<Item = Config> + '_ {
        (0..self.size).map(|id| self.config(id))
    }

    /// The ids of the configurations satisfying a predicate.
    ///
    /// Used to carve irregular spaces (e.g. "xlarge clusters only go up to 24
    /// instances") out of the full Cartesian grid.
    #[must_use]
    pub fn restrict<F>(&self, mut keep: F) -> Vec<ConfigId>
    where
        F: FnMut(&Config) -> bool,
    {
        self.ids().filter(|id| keep(&self.config_of(*id))).collect()
    }

    /// Looks up a dimension by name.
    #[must_use]
    pub fn dimension(&self, name: &str) -> Option<&Domain> {
        self.dimensions.iter().find(|d| d.name() == name)
    }

    /// Index of a dimension by name.
    #[must_use]
    pub fn dimension_index(&self, name: &str) -> Option<usize> {
        self.dimensions.iter().position(|d| d.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SpaceBuilder;

    fn small_space() -> ConfigSpace {
        SpaceBuilder::new()
            .numeric("workers", [4.0, 8.0, 16.0])
            .categorical("vm", ["small", "large"])
            .numeric("batch", [16.0, 256.0])
            .build()
    }

    #[test]
    fn size_is_the_product_of_cardinalities() {
        let space = small_space();
        assert_eq!(space.len(), 12);
        assert!(!space.is_empty());
        assert_eq!(space.dims(), 3);
        assert_eq!(space.cardinalities(), vec![3, 2, 2]);
    }

    #[test]
    fn ids_round_trip_through_configs() {
        let space = small_space();
        for id in 0..space.len() {
            let config = space.config(id);
            assert_eq!(space.id_of(&config), Some(id));
        }
    }

    #[test]
    fn all_configs_are_distinct() {
        let space = small_space();
        let mut seen = std::collections::HashSet::new();
        for config in space.iter() {
            assert!(seen.insert(config.levels().to_vec()));
        }
        assert_eq!(seen.len(), space.len());
    }

    #[test]
    fn id_of_rejects_foreign_configs() {
        let space = small_space();
        assert_eq!(space.id_of(&Config::from(vec![0, 0])), None);
        assert_eq!(space.id_of(&Config::from(vec![5, 0, 0])), None);
    }

    #[test]
    fn features_use_numeric_values_and_category_indices() {
        let space = small_space();
        let config = space
            .config_from_values(&[
                ("workers", Value::Number(16.0)),
                ("vm", Value::Label("large".into())),
                ("batch", Value::Number(16.0)),
            ])
            .unwrap();
        assert_eq!(space.features(&config), vec![16.0, 1.0, 16.0]);
        let values = space.values(&config);
        assert_eq!(values[1].1, Value::Label("large".into()));
    }

    #[test]
    fn config_from_values_reports_problems() {
        let space = small_space();
        let missing = space.config_from_values(&[("workers", Value::Number(4.0))]);
        assert!(matches!(missing, Err(SpaceError::InvalidConfig(_))));
        let unknown = space.config_from_values(&[("gpu", Value::Number(1.0))]);
        assert!(matches!(unknown, Err(SpaceError::InvalidConfig(_))));
        let bad_value = space.config_from_values(&[
            ("workers", Value::Number(5.0)),
            ("vm", Value::Label("small".into())),
            ("batch", Value::Number(16.0)),
        ]);
        assert!(matches!(bad_value, Err(SpaceError::InvalidConfig(_))));
    }

    #[test]
    fn restriction_filters_the_grid() {
        let space = small_space();
        let only_small = space.restrict(|c| c.level(1) == 0);
        assert_eq!(only_small.len(), 6);
        for id in only_small {
            assert_eq!(space.config_of(id).level(1), 0);
        }
    }

    #[test]
    fn dimension_lookup_by_name() {
        let space = small_space();
        assert_eq!(space.dimension("vm").map(|d| d.cardinality()), Some(2));
        assert_eq!(space.dimension_index("batch"), Some(2));
        assert!(space.dimension("nope").is_none());
    }

    #[test]
    fn duplicate_and_empty_dimension_errors() {
        let err = ConfigSpace::new(vec![]).unwrap_err();
        assert_eq!(err, SpaceError::Empty);
        let err = ConfigSpace::new(vec![
            Domain::numeric("x", [1.0]),
            Domain::numeric("x", [2.0]),
        ])
        .unwrap_err();
        assert_eq!(err, SpaceError::DuplicateDimension("x".into()));
        assert!(err.to_string().contains('x'));
    }
}
