//! Dimensions of a configuration space.

use serde::{Deserialize, Serialize};

/// The value taken by one dimension of a configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A numeric level (e.g. number of VMs, batch size, learning rate).
    Number(f64),
    /// A categorical label (e.g. a VM type or `sync`/`async` training mode).
    Label(String),
}

impl Value {
    /// Returns the numeric value, if this is a [`Value::Number`].
    #[must_use]
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            Value::Label(_) => None,
        }
    }

    /// Returns the label, if this is a [`Value::Label`].
    #[must_use]
    pub fn as_label(&self) -> Option<&str> {
        match self {
            Value::Number(_) => None,
            Value::Label(s) => Some(s),
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Number(x) => write!(f, "{x}"),
            Value::Label(s) => write!(f, "{s}"),
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Number(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Label(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Label(s)
    }
}

/// One dimension of a configuration space: a named, finite, ordered list of
/// levels.
///
/// Numeric domains carry their levels as `f64` (the surrogate model sees the
/// actual value, so e.g. 8 vs. 112 workers are far apart); categorical domains
/// carry labels and are encoded by level index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Domain {
    /// Discrete numeric levels, e.g. cluster sizes `{8, 16, 32, …}`.
    Numeric {
        /// Dimension name (e.g. `"workers"`).
        name: String,
        /// Ordered list of admissible values.
        levels: Vec<f64>,
    },
    /// Categorical labels, e.g. VM types.
    Categorical {
        /// Dimension name (e.g. `"vm_type"`).
        name: String,
        /// Admissible labels, in declaration order.
        labels: Vec<String>,
    },
}

impl Domain {
    /// Creates a numeric domain.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or contains a non-finite value.
    #[must_use]
    pub fn numeric(name: impl Into<String>, levels: impl IntoIterator<Item = f64>) -> Self {
        let levels: Vec<f64> = levels.into_iter().collect();
        assert!(
            !levels.is_empty(),
            "a numeric domain needs at least one level"
        );
        assert!(
            levels.iter().all(|l| l.is_finite()),
            "numeric levels must be finite"
        );
        Domain::Numeric {
            name: name.into(),
            levels,
        }
    }

    /// Creates a categorical domain.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty.
    #[must_use]
    pub fn categorical<S: Into<String>>(
        name: impl Into<String>,
        labels: impl IntoIterator<Item = S>,
    ) -> Self {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        assert!(
            !labels.is_empty(),
            "a categorical domain needs at least one label"
        );
        Domain::Categorical {
            name: name.into(),
            labels,
        }
    }

    /// Dimension name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Domain::Numeric { name, .. } | Domain::Categorical { name, .. } => name,
        }
    }

    /// Number of levels of this dimension.
    #[must_use]
    pub fn cardinality(&self) -> usize {
        match self {
            Domain::Numeric { levels, .. } => levels.len(),
            Domain::Categorical { labels, .. } => labels.len(),
        }
    }

    /// The value at a given level index.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn value(&self, level: usize) -> Value {
        match self {
            Domain::Numeric { levels, .. } => Value::Number(levels[level]),
            Domain::Categorical { labels, .. } => Value::Label(labels[level].clone()),
        }
    }

    /// Numeric encoding of a level, as seen by the surrogate model.
    ///
    /// Numeric domains encode as the level's value; categorical domains encode
    /// as the level index (regression trees split on thresholds, so an ordinal
    /// encoding of a handful of categories is adequate and is what the paper's
    /// Weka setup does).
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn feature(&self, level: usize) -> f64 {
        match self {
            Domain::Numeric { levels, .. } => levels[level],
            Domain::Categorical { labels, .. } => {
                assert!(level < labels.len(), "level {level} out of range");
                level as f64
            }
        }
    }

    /// Finds the level index of a value, if it belongs to the domain.
    ///
    /// Numeric values are matched with a small relative tolerance.
    #[must_use]
    pub fn level_of(&self, value: &Value) -> Option<usize> {
        match (self, value) {
            (Domain::Numeric { levels, .. }, Value::Number(x)) => levels
                .iter()
                .position(|l| (l - x).abs() <= 1e-9 * l.abs().max(1.0)),
            (Domain::Categorical { labels, .. }, Value::Label(s)) => {
                labels.iter().position(|l| l == s)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_domain_roundtrips_values() {
        let d = Domain::numeric("workers", [8.0, 16.0, 32.0]);
        assert_eq!(d.name(), "workers");
        assert_eq!(d.cardinality(), 3);
        assert_eq!(d.value(1), Value::Number(16.0));
        assert_eq!(d.feature(2), 32.0);
        assert_eq!(d.level_of(&Value::Number(16.0)), Some(1));
        assert_eq!(d.level_of(&Value::Number(20.0)), None);
        assert_eq!(d.level_of(&Value::Label("16".into())), None);
    }

    #[test]
    fn categorical_domain_roundtrips_labels() {
        let d = Domain::categorical("vm", ["small", "large"]);
        assert_eq!(d.cardinality(), 2);
        assert_eq!(d.value(0), Value::Label("small".into()));
        assert_eq!(d.feature(1), 1.0);
        assert_eq!(d.level_of(&Value::Label("large".into())), Some(1));
        assert_eq!(d.level_of(&Value::Label("huge".into())), None);
    }

    #[test]
    fn value_accessors_and_display() {
        let n = Value::Number(2.5);
        let l = Value::Label("sync".into());
        assert_eq!(n.as_number(), Some(2.5));
        assert_eq!(n.as_label(), None);
        assert_eq!(l.as_label(), Some("sync"));
        assert_eq!(l.as_number(), None);
        assert_eq!(n.to_string(), "2.5");
        assert_eq!(l.to_string(), "sync");
        assert_eq!(Value::from(3.0), Value::Number(3.0));
        assert_eq!(Value::from("a"), Value::Label("a".into()));
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_numeric_domain_panics() {
        let _ = Domain::numeric("x", []);
    }

    #[test]
    #[should_panic(expected = "at least one label")]
    fn empty_categorical_domain_panics() {
        let _ = Domain::categorical::<&str>("x", []);
    }
}
