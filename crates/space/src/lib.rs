//! Configuration-space abstraction for the Lynceus reproduction.
//!
//! A *configuration* in the paper is a tuple `x = ⟨N, H, P⟩`: the number of
//! rented VMs, the VM hardware type, and the job-specific parameter settings
//! (e.g. hyper-parameters of a learning algorithm). The optimizer treats the
//! configuration space as a finite Cartesian grid of a handful of dimensions
//! (5 for the TensorFlow jobs, 3 for the Scout/CherryPick jobs).
//!
//! This crate provides:
//!
//! * [`Domain`] — one dimension of the grid (discrete numeric levels or
//!   categorical labels);
//! * [`Config`] — a point of the grid, stored as per-dimension level indices;
//! * [`ConfigSpace`] — the grid itself, with id ↔ config ↔ feature-vector
//!   conversions, enumeration and restriction;
//! * [`SpaceBuilder`] — ergonomic construction.
//!
//! # Example
//!
//! ```
//! use lynceus_space::SpaceBuilder;
//!
//! let space = SpaceBuilder::new()
//!     .numeric("workers", [8.0, 16.0, 32.0])
//!     .categorical("vm_type", ["t2.small", "t2.xlarge"])
//!     .numeric("batch_size", [16.0, 256.0])
//!     .build();
//! assert_eq!(space.len(), 12);
//! let config = space.config(7);
//! assert_eq!(space.id_of(&config), Some(7));
//! assert_eq!(space.features(&config).len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod config;
mod domain;
mod space;

pub use builder::SpaceBuilder;
pub use config::{Config, ConfigId};
pub use domain::{Domain, Value};
pub use space::{ConfigSpace, SpaceError};
