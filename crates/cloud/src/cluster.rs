//! Cluster specifications: `N` identical VMs.

use crate::billing::{cost_for, BillingGranularity};
use crate::vm::VmType;
use serde::{Deserialize, Serialize};

/// A homogeneous cluster: `count` VMs of one [`VmType`].
///
/// The paper's configurations always rent identical machines (plus one extra
/// VM for the TensorFlow parameter server, which the dataset generator adds
/// explicitly when computing prices).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    vm: VmType,
    count: u32,
}

impl ClusterSpec {
    /// Creates a cluster of `count` VMs.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    #[must_use]
    pub fn new(vm: VmType, count: u32) -> Self {
        assert!(count > 0, "a cluster needs at least one VM");
        Self { vm, count }
    }

    /// The VM shape of every node.
    #[must_use]
    pub fn vm(&self) -> &VmType {
        &self.vm
    }

    /// Number of VMs.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Total number of virtual CPUs.
    #[must_use]
    pub fn total_vcpus(&self) -> u32 {
        self.vm.vcpus * self.count
    }

    /// Total RAM in GiB.
    #[must_use]
    pub fn total_ram_gb(&self) -> f64 {
        self.vm.ram_gb * f64::from(self.count)
    }

    /// Aggregate compute throughput in "normalized core" units (vCPUs scaled
    /// by the per-core speed of the family). Used by the job simulators.
    #[must_use]
    pub fn compute_units(&self) -> f64 {
        f64::from(self.total_vcpus()) * self.vm.relative_core_speed
    }

    /// Aggregate network bandwidth in Gbit/s.
    #[must_use]
    pub fn total_network_gbps(&self) -> f64 {
        self.vm.network_gbps * f64::from(self.count)
    }

    /// Price of the whole cluster in dollars per hour.
    #[must_use]
    pub fn price_per_hour(&self) -> f64 {
        self.vm.price_per_hour * f64::from(self.count)
    }

    /// Price of the whole cluster in dollars per second.
    #[must_use]
    pub fn price_per_second(&self) -> f64 {
        self.price_per_hour() / 3600.0
    }

    /// Cost of holding the cluster for a duration, under per-second billing.
    ///
    /// # Panics
    ///
    /// Panics if the duration is negative or not finite.
    #[must_use]
    pub fn cost_for_seconds(&self, seconds: f64) -> f64 {
        cost_for(
            seconds,
            self.price_per_hour(),
            BillingGranularity::PerSecond,
        )
    }

    /// Returns a cluster with the same VM shape but a different node count.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    #[must_use]
    pub fn resized(&self, count: u32) -> Self {
        Self::new(self.vm.clone(), count)
    }
}

impl std::fmt::Display for ClusterSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x {}", self.count, self.vm.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    fn cluster(name: &str, count: u32) -> ClusterSpec {
        ClusterSpec::new(Catalog::aws().get(name).unwrap().clone(), count)
    }

    #[test]
    fn totals_scale_with_the_node_count() {
        let c = cluster("m4.xlarge", 6);
        assert_eq!(c.total_vcpus(), 24);
        assert!((c.total_ram_gb() - 96.0).abs() < 1e-12);
        assert!((c.price_per_hour() - 1.2).abs() < 1e-12);
        assert!((c.compute_units() - 24.0).abs() < 1e-12);
        assert!(c.total_network_gbps() > 0.0);
    }

    #[test]
    fn cost_is_price_times_time() {
        let c = cluster("c4.large", 4);
        let one_hour = c.cost_for_seconds(3600.0);
        assert!((one_hour - c.price_per_hour()).abs() < 1e-9);
        let half_hour = c.cost_for_seconds(1800.0);
        assert!((half_hour * 2.0 - one_hour).abs() < 1e-9);
    }

    #[test]
    fn resizing_keeps_the_vm_shape() {
        let c = cluster("r4.large", 2);
        let bigger = c.resized(10);
        assert_eq!(bigger.count(), 10);
        assert_eq!(bigger.vm().name(), "r4.large");
    }

    #[test]
    fn display_shows_count_and_type() {
        assert_eq!(cluster("t2.small", 8).to_string(), "8x t2.small");
    }

    #[test]
    #[should_panic(expected = "at least one VM")]
    fn zero_node_cluster_panics() {
        let _ = cluster("t2.small", 0);
    }
}
