//! Billing arithmetic.
//!
//! The paper assumes a pay-by-the-second (or by-the-minute) pricing scheme,
//! which all major providers now offer (Section 2 of the paper). The billing
//! granularity matters: with per-minute billing a 61-second run costs two
//! minutes. The datasets use per-second billing by default, matching the
//! paper's EC2 setup, but the coarser granularities are provided so the
//! sensitivity of the results to billing can be explored.
//!
//! [`SpotPriceSeries`] adds the market dimension the paper's on-demand
//! setup abstracts away: a seeded, *step-indexed* series of price
//! multipliers (a bounded geometric walk), so fault-injection experiments
//! can price profiling runs off a spot market that moves deterministically
//! with the profiling step count — never with wall-clock time.

use lynceus_math::rng::SeededRng;
use serde::{Deserialize, Serialize};

/// The granularity at which usage is rounded up before being charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum BillingGranularity {
    /// Bill exact seconds (EC2 Linux, per the paper's assumption).
    #[default]
    PerSecond,
    /// Round up to whole minutes (Azure-style).
    PerMinute,
    /// Round up to whole hours (legacy EC2).
    PerHour,
}

impl BillingGranularity {
    /// The billable duration, in seconds, for an actual usage duration.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or not finite.
    #[must_use]
    pub fn billable_seconds(self, seconds: f64) -> f64 {
        assert!(
            seconds >= 0.0 && seconds.is_finite(),
            "usage duration must be a finite non-negative number of seconds"
        );
        match self {
            BillingGranularity::PerSecond => seconds,
            BillingGranularity::PerMinute => (seconds / 60.0).ceil() * 60.0,
            BillingGranularity::PerHour => (seconds / 3600.0).ceil() * 3600.0,
        }
    }
}

/// Cost, in dollars, of using a resource priced at `price_per_hour` for
/// `seconds` seconds under the given billing granularity.
///
/// # Panics
///
/// Panics if `seconds` is negative/not finite or `price_per_hour` is negative.
#[must_use]
pub fn cost_for(seconds: f64, price_per_hour: f64, granularity: BillingGranularity) -> f64 {
    assert!(price_per_hour >= 0.0, "price must be non-negative");
    granularity.billable_seconds(seconds) * price_per_hour / 3600.0
}

/// A precomputed, seeded series of spot-price multipliers indexed by
/// profiling step.
///
/// The series is a geometric random walk clamped to a band: at each step the
/// multiplier moves by a lognormal factor of the given volatility and is
/// clamped to `[floor, ceiling]`. Indexing past the horizon holds the last
/// value, so a price exists for every step regardless of how long a session
/// runs. Two series with the same seed and parameters are identical —
/// the price a run pays depends only on its step index, which is what keeps
/// price-shocked sessions exactly replayable after a checkpoint restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpotPriceSeries {
    multipliers: Vec<f64>,
}

impl SpotPriceSeries {
    /// Builds a series of `horizon` multipliers starting at 1.0.
    ///
    /// `volatility` is the per-step lognormal σ (0 freezes the price at
    /// 1.0); the walk is clamped to `band = (floor, ceiling)`.
    ///
    /// # Panics
    ///
    /// Panics unless `volatility` is finite and non-negative and
    /// `0 < floor ≤ ceiling` with both finite.
    #[must_use]
    pub fn geometric(seed: u64, horizon: usize, volatility: f64, band: (f64, f64)) -> Self {
        let (floor, ceiling) = band;
        assert!(
            volatility.is_finite() && volatility >= 0.0,
            "volatility must be a finite non-negative σ"
        );
        assert!(
            floor > 0.0 && floor <= ceiling && ceiling.is_finite(),
            "the price band must satisfy 0 < floor <= ceiling, both finite"
        );
        let mut rng = SeededRng::new(seed);
        let mut price = 1.0f64.clamp(floor, ceiling);
        let mut multipliers = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            multipliers.push(price);
            price = (price * rng.lognormal(0.0, volatility)).clamp(floor, ceiling);
        }
        Self { multipliers }
    }

    /// The price multiplier in effect at a profiling step. Steps past the
    /// horizon hold the last value; an empty series is a flat 1.0.
    #[must_use]
    pub fn multiplier_at(&self, step: u64) -> f64 {
        let index = usize::try_from(step).unwrap_or(usize::MAX);
        self.multipliers
            .get(index)
            .or_else(|| self.multipliers.last())
            .copied()
            .unwrap_or(1.0)
    }

    /// Number of precomputed steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.multipliers.len()
    }

    /// True when no steps were precomputed (flat 1.0 pricing).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.multipliers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_second_billing_is_linear() {
        let a = cost_for(100.0, 3.6, BillingGranularity::PerSecond);
        let b = cost_for(200.0, 3.6, BillingGranularity::PerSecond);
        assert!((a - 0.1).abs() < 1e-12);
        assert!((b - 2.0 * a).abs() < 1e-12);
    }

    #[test]
    fn per_minute_billing_rounds_up() {
        assert_eq!(BillingGranularity::PerMinute.billable_seconds(61.0), 120.0);
        assert_eq!(BillingGranularity::PerMinute.billable_seconds(60.0), 60.0);
        assert_eq!(BillingGranularity::PerMinute.billable_seconds(0.0), 0.0);
    }

    #[test]
    fn per_hour_billing_rounds_up() {
        assert_eq!(BillingGranularity::PerHour.billable_seconds(3601.0), 7200.0);
        let cost = cost_for(10.0, 1.0, BillingGranularity::PerHour);
        assert!((cost - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coarser_granularities_never_cost_less() {
        for seconds in [1.0, 59.0, 61.0, 3599.0, 3600.0, 5000.0] {
            let s = cost_for(seconds, 2.0, BillingGranularity::PerSecond);
            let m = cost_for(seconds, 2.0, BillingGranularity::PerMinute);
            let h = cost_for(seconds, 2.0, BillingGranularity::PerHour);
            assert!(s <= m + 1e-12);
            assert!(m <= h + 1e-12);
        }
    }

    #[test]
    fn zero_usage_costs_nothing() {
        for g in [
            BillingGranularity::PerSecond,
            BillingGranularity::PerMinute,
            BillingGranularity::PerHour,
        ] {
            assert_eq!(cost_for(0.0, 10.0, g), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_duration_panics() {
        let _ = cost_for(-1.0, 1.0, BillingGranularity::PerSecond);
    }

    #[test]
    fn spot_series_is_seeded_banded_and_holds_past_the_horizon() {
        let a = SpotPriceSeries::geometric(42, 64, 0.2, (0.5, 2.0));
        let b = SpotPriceSeries::geometric(42, 64, 0.2, (0.5, 2.0));
        assert_eq!(a, b, "same seed, same series");
        assert_eq!(a.len(), 64);
        assert!(!a.is_empty());
        assert_eq!(a.multiplier_at(0), 1.0, "the walk starts at par");
        for step in 0..200u64 {
            let m = a.multiplier_at(step);
            assert!(
                (0.5..=2.0).contains(&m),
                "step {step} escaped the band: {m}"
            );
        }
        assert_eq!(
            a.multiplier_at(64),
            a.multiplier_at(1_000_000),
            "past the horizon the last price holds"
        );
        let c = SpotPriceSeries::geometric(43, 64, 0.2, (0.5, 2.0));
        assert_ne!(a, c, "different seeds move differently");
    }

    #[test]
    fn zero_volatility_freezes_the_price() {
        let flat = SpotPriceSeries::geometric(7, 16, 0.0, (0.5, 2.0));
        for step in 0..16 {
            assert_eq!(flat.multiplier_at(step), 1.0);
        }
        let empty = SpotPriceSeries::geometric(7, 0, 0.3, (0.5, 2.0));
        assert!(empty.is_empty());
        assert_eq!(empty.multiplier_at(3), 1.0, "an empty series prices at par");
    }

    #[test]
    #[should_panic(expected = "price band")]
    fn an_inverted_band_panics() {
        let _ = SpotPriceSeries::geometric(0, 8, 0.1, (2.0, 0.5));
    }
}
