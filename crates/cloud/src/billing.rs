//! Billing arithmetic.
//!
//! The paper assumes a pay-by-the-second (or by-the-minute) pricing scheme,
//! which all major providers now offer (Section 2 of the paper). The billing
//! granularity matters: with per-minute billing a 61-second run costs two
//! minutes. The datasets use per-second billing by default, matching the
//! paper's EC2 setup, but the coarser granularities are provided so the
//! sensitivity of the results to billing can be explored.

use serde::{Deserialize, Serialize};

/// The granularity at which usage is rounded up before being charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum BillingGranularity {
    /// Bill exact seconds (EC2 Linux, per the paper's assumption).
    #[default]
    PerSecond,
    /// Round up to whole minutes (Azure-style).
    PerMinute,
    /// Round up to whole hours (legacy EC2).
    PerHour,
}

impl BillingGranularity {
    /// The billable duration, in seconds, for an actual usage duration.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or not finite.
    #[must_use]
    pub fn billable_seconds(self, seconds: f64) -> f64 {
        assert!(
            seconds >= 0.0 && seconds.is_finite(),
            "usage duration must be a finite non-negative number of seconds"
        );
        match self {
            BillingGranularity::PerSecond => seconds,
            BillingGranularity::PerMinute => (seconds / 60.0).ceil() * 60.0,
            BillingGranularity::PerHour => (seconds / 3600.0).ceil() * 3600.0,
        }
    }
}

/// Cost, in dollars, of using a resource priced at `price_per_hour` for
/// `seconds` seconds under the given billing granularity.
///
/// # Panics
///
/// Panics if `seconds` is negative/not finite or `price_per_hour` is negative.
#[must_use]
pub fn cost_for(seconds: f64, price_per_hour: f64, granularity: BillingGranularity) -> f64 {
    assert!(price_per_hour >= 0.0, "price must be non-negative");
    granularity.billable_seconds(seconds) * price_per_hour / 3600.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_second_billing_is_linear() {
        let a = cost_for(100.0, 3.6, BillingGranularity::PerSecond);
        let b = cost_for(200.0, 3.6, BillingGranularity::PerSecond);
        assert!((a - 0.1).abs() < 1e-12);
        assert!((b - 2.0 * a).abs() < 1e-12);
    }

    #[test]
    fn per_minute_billing_rounds_up() {
        assert_eq!(BillingGranularity::PerMinute.billable_seconds(61.0), 120.0);
        assert_eq!(BillingGranularity::PerMinute.billable_seconds(60.0), 60.0);
        assert_eq!(BillingGranularity::PerMinute.billable_seconds(0.0), 0.0);
    }

    #[test]
    fn per_hour_billing_rounds_up() {
        assert_eq!(BillingGranularity::PerHour.billable_seconds(3601.0), 7200.0);
        let cost = cost_for(10.0, 1.0, BillingGranularity::PerHour);
        assert!((cost - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coarser_granularities_never_cost_less() {
        for seconds in [1.0, 59.0, 61.0, 3599.0, 3600.0, 5000.0] {
            let s = cost_for(seconds, 2.0, BillingGranularity::PerSecond);
            let m = cost_for(seconds, 2.0, BillingGranularity::PerMinute);
            let h = cost_for(seconds, 2.0, BillingGranularity::PerHour);
            assert!(s <= m + 1e-12);
            assert!(m <= h + 1e-12);
        }
    }

    #[test]
    fn zero_usage_costs_nothing() {
        for g in [
            BillingGranularity::PerSecond,
            BillingGranularity::PerMinute,
            BillingGranularity::PerHour,
        ] {
            assert_eq!(cost_for(0.0, 10.0, g), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_duration_panics() {
        let _ = cost_for(-1.0, 1.0, BillingGranularity::PerSecond);
    }
}
