//! Setup / switching costs (paper Section 4.4, "Setup costs" extension).
//!
//! Profiling the same configurations in different orders can incur different
//! costs: moving from one cluster shape to another requires booting new VMs,
//! reloading data and warming the deployed system, whereas back-to-back runs
//! on the same cluster only pay for the job itself. [`SetupCostModel`]
//! approximates those switching costs analytically, as the paper suggests, so
//! the optimizer extension can fold them into the cost of each exploration
//! step.

use crate::cluster::ClusterSpec;
use serde::{Deserialize, Serialize};

/// Analytic model of the cost of switching the deployed cluster.
///
/// Switching from cluster `a` to cluster `b` requires:
///
/// * booting the VMs of `b` that are not already running (same VM type only:
///   changing VM type reboots everything);
/// * reloading the dataset onto the new nodes;
/// * a fixed warm-up of the framework.
///
/// During all of that, the *new* cluster is already being billed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SetupCostModel {
    /// Seconds to boot one VM (boots happen in parallel, so the boot phase
    /// lasts this long whenever at least one new VM is needed).
    pub vm_boot_seconds: f64,
    /// Seconds to load the input dataset onto a fresh cluster.
    pub data_load_seconds: f64,
    /// Seconds of framework warm-up after any change.
    pub warmup_seconds: f64,
}

impl Default for SetupCostModel {
    fn default() -> Self {
        Self {
            vm_boot_seconds: 60.0,
            data_load_seconds: 90.0,
            warmup_seconds: 30.0,
        }
    }
}

impl SetupCostModel {
    /// A model with no switching costs (the paper's default setting, where
    /// setup costs are ignored).
    #[must_use]
    pub fn free() -> Self {
        Self {
            vm_boot_seconds: 0.0,
            data_load_seconds: 0.0,
            warmup_seconds: 0.0,
        }
    }

    /// Setup *time* (seconds) incurred when moving from `previous` (if any)
    /// to `next`.
    #[must_use]
    pub fn setup_seconds(&self, previous: Option<&ClusterSpec>, next: &ClusterSpec) -> f64 {
        match previous {
            None => self.vm_boot_seconds + self.data_load_seconds + self.warmup_seconds,
            Some(prev) => {
                if prev == next {
                    // Same cluster: only the warm-up (e.g. new parameters).
                    self.warmup_seconds
                } else if prev.vm() == next.vm() && next.count() <= prev.count() {
                    // Shrinking a cluster of the same VM type: no boot, no
                    // reload, just warm-up.
                    self.warmup_seconds
                } else if prev.vm() == next.vm() {
                    // Growing a cluster of the same VM type: boot the extra
                    // nodes and load data onto them.
                    self.vm_boot_seconds + self.data_load_seconds + self.warmup_seconds
                } else {
                    // Different VM type: full redeployment.
                    self.vm_boot_seconds + self.data_load_seconds + self.warmup_seconds
                }
            }
        }
    }

    /// Setup *cost* (dollars) incurred when moving from `previous` to `next`,
    /// billed at the new cluster's price.
    #[must_use]
    pub fn setup_cost(&self, previous: Option<&ClusterSpec>, next: &ClusterSpec) -> f64 {
        next.cost_for_seconds(self.setup_seconds(previous, next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::cluster::ClusterSpec;

    fn cluster(name: &str, count: u32) -> ClusterSpec {
        ClusterSpec::new(Catalog::aws().get(name).unwrap().clone(), count)
    }

    #[test]
    fn free_model_costs_nothing() {
        let model = SetupCostModel::free();
        let a = cluster("m4.large", 4);
        let b = cluster("c4.xlarge", 8);
        assert_eq!(model.setup_cost(None, &a), 0.0);
        assert_eq!(model.setup_cost(Some(&a), &b), 0.0);
    }

    #[test]
    fn first_deployment_pays_the_full_setup() {
        let model = SetupCostModel::default();
        let a = cluster("m4.large", 4);
        let expected = model.vm_boot_seconds + model.data_load_seconds + model.warmup_seconds;
        assert_eq!(model.setup_seconds(None, &a), expected);
        assert!(model.setup_cost(None, &a) > 0.0);
    }

    #[test]
    fn same_cluster_only_pays_warmup() {
        let model = SetupCostModel::default();
        let a = cluster("m4.large", 4);
        assert_eq!(model.setup_seconds(Some(&a), &a), model.warmup_seconds);
    }

    #[test]
    fn shrinking_is_cheaper_than_growing() {
        let model = SetupCostModel::default();
        let big = cluster("m4.large", 8);
        let small = cluster("m4.large", 2);
        let shrink = model.setup_seconds(Some(&big), &small);
        let grow = model.setup_seconds(Some(&small), &big);
        assert!(shrink < grow);
    }

    #[test]
    fn changing_vm_type_pays_the_full_setup() {
        let model = SetupCostModel::default();
        let a = cluster("m4.large", 4);
        let b = cluster("r4.large", 4);
        let full = model.vm_boot_seconds + model.data_load_seconds + model.warmup_seconds;
        assert_eq!(model.setup_seconds(Some(&a), &b), full);
    }

    #[test]
    fn setup_cost_scales_with_the_new_cluster_price() {
        let model = SetupCostModel::default();
        let cheap = cluster("t2.small", 2);
        let pricey = cluster("i2.2xlarge", 2);
        let from = cluster("m4.large", 4);
        assert!(model.setup_cost(Some(&from), &pricey) > model.setup_cost(Some(&from), &cheap));
    }
}
