//! The VM catalog: every instance shape used by the paper's three datasets.

use crate::vm::{VmFamily, VmSize, VmType};
use serde::{Deserialize, Serialize};

/// A catalog of VM shapes with name-based lookup.
///
/// [`Catalog::aws`] reproduces the instance types used by the paper's
/// evaluation with realistic (2018-era, us-east-1) on-demand prices. Absolute
/// prices only matter up to a scale factor — the evaluation metric (cost
/// normalized w.r.t. the optimum) is scale free — but keeping realistic
/// relative prices preserves the trade-offs between big-and-expensive and
/// small-and-slow clusters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Catalog {
    vms: Vec<VmType>,
}

impl Catalog {
    /// An empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The catalog of every instance type used in the paper's evaluation.
    #[must_use]
    pub fn aws() -> Self {
        let mut catalog = Self::new();
        let entries: &[(VmFamily, VmSize, u32, f64, f64, f64, f64)] = &[
            // (family, size, vcpus, ram_gb, $/h, rel core speed, net gbps)
            // t2 family (Table 2 of the paper).
            (VmFamily::T2, VmSize::Small, 1, 2.0, 0.023, 0.80, 0.5),
            (VmFamily::T2, VmSize::Medium, 2, 4.0, 0.0464, 0.80, 0.8),
            (VmFamily::T2, VmSize::Xlarge, 4, 16.0, 0.1856, 0.85, 1.5),
            (VmFamily::T2, VmSize::Xlarge2, 8, 32.0, 0.3712, 0.85, 2.2),
            // c4 family (compute optimized).
            (VmFamily::C4, VmSize::Large, 2, 3.75, 0.10, 1.25, 0.6),
            (VmFamily::C4, VmSize::Xlarge, 4, 7.5, 0.199, 1.25, 1.2),
            (VmFamily::C4, VmSize::Xlarge2, 8, 15.0, 0.398, 1.25, 2.0),
            // m4 family (general purpose).
            (VmFamily::M4, VmSize::Large, 2, 8.0, 0.10, 1.0, 0.55),
            (VmFamily::M4, VmSize::Xlarge, 4, 16.0, 0.20, 1.0, 0.95),
            (VmFamily::M4, VmSize::Xlarge2, 8, 32.0, 0.40, 1.0, 1.4),
            // r4 family (memory optimized, Scout).
            (VmFamily::R4, VmSize::Large, 2, 15.25, 0.133, 1.05, 0.8),
            (VmFamily::R4, VmSize::Xlarge, 4, 30.5, 0.266, 1.05, 1.2),
            (VmFamily::R4, VmSize::Xlarge2, 8, 61.0, 0.532, 1.05, 2.0),
            // r3 family (memory optimized, CherryPick).
            (VmFamily::R3, VmSize::Large, 2, 15.25, 0.166, 0.95, 0.6),
            (VmFamily::R3, VmSize::Xlarge, 4, 30.5, 0.333, 0.95, 0.9),
            (VmFamily::R3, VmSize::Xlarge2, 8, 61.0, 0.665, 0.95, 1.3),
            // i2 family (storage optimized, CherryPick).
            (VmFamily::I2, VmSize::Large, 2, 15.25, 0.426, 0.90, 0.6),
            (VmFamily::I2, VmSize::Xlarge, 4, 30.5, 0.853, 0.90, 0.9),
            (VmFamily::I2, VmSize::Xlarge2, 8, 61.0, 1.705, 0.90, 1.3),
        ];
        for &(family, size, vcpus, ram_gb, price, speed, net) in entries {
            catalog.push(VmType {
                family,
                size,
                vcpus,
                ram_gb,
                price_per_hour: price,
                relative_core_speed: speed,
                network_gbps: net,
            });
        }
        catalog
    }

    /// Adds a VM shape to the catalog.
    pub fn push(&mut self, vm: VmType) {
        self.vms.push(vm);
    }

    /// Looks up a shape by full name (e.g. `"m4.xlarge"`).
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&VmType> {
        self.vms.iter().find(|vm| vm.name() == name)
    }

    /// Looks up a shape by family and size.
    #[must_use]
    pub fn get_typed(&self, family: VmFamily, size: VmSize) -> Option<&VmType> {
        self.vms
            .iter()
            .find(|vm| vm.family == family && vm.size == size)
    }

    /// All shapes, in insertion order.
    #[must_use]
    pub fn vms(&self) -> &[VmType] {
        &self.vms
    }

    /// All shapes of a given family.
    #[must_use]
    pub fn family(&self, family: VmFamily) -> Vec<&VmType> {
        self.vms.iter().filter(|vm| vm.family == family).collect()
    }

    /// Number of shapes in the catalog.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vms.len()
    }

    /// True if the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aws_catalog_contains_all_paper_families() {
        let catalog = Catalog::aws();
        assert_eq!(catalog.family(VmFamily::T2).len(), 4);
        for family in [
            VmFamily::C4,
            VmFamily::M4,
            VmFamily::R4,
            VmFamily::R3,
            VmFamily::I2,
        ] {
            assert_eq!(catalog.family(family).len(), 3, "family {family}");
        }
        assert_eq!(catalog.len(), 4 + 5 * 3);
    }

    #[test]
    fn lookups_by_name_and_by_type_agree() {
        let catalog = Catalog::aws();
        let by_name = catalog.get("r4.2xlarge").unwrap();
        let by_type = catalog.get_typed(VmFamily::R4, VmSize::Xlarge2).unwrap();
        assert_eq!(by_name, by_type);
        assert!(catalog.get("p3.16xlarge").is_none());
    }

    #[test]
    fn tensorflow_vms_match_table_2() {
        let catalog = Catalog::aws();
        let small = catalog.get("t2.small").unwrap();
        assert_eq!((small.vcpus, small.ram_gb), (1, 2.0));
        let medium = catalog.get("t2.medium").unwrap();
        assert_eq!((medium.vcpus, medium.ram_gb), (2, 4.0));
        let xlarge = catalog.get("t2.xlarge").unwrap();
        assert_eq!((xlarge.vcpus, xlarge.ram_gb), (4, 16.0));
        let xxlarge = catalog.get("t2.2xlarge").unwrap();
        assert_eq!((xxlarge.vcpus, xxlarge.ram_gb), (8, 32.0));
    }

    #[test]
    fn prices_increase_with_size_within_a_family() {
        let catalog = Catalog::aws();
        for family in [
            VmFamily::T2,
            VmFamily::C4,
            VmFamily::M4,
            VmFamily::R4,
            VmFamily::R3,
            VmFamily::I2,
        ] {
            let mut vms = catalog.family(family);
            vms.sort_by_key(|vm| vm.size);
            for pair in vms.windows(2) {
                assert!(
                    pair[0].price_per_hour < pair[1].price_per_hour,
                    "{} should be cheaper than {}",
                    pair[0].name(),
                    pair[1].name()
                );
            }
        }
    }

    #[test]
    fn bigger_sizes_have_more_cores_and_memory() {
        let catalog = Catalog::aws();
        for family in [VmFamily::C4, VmFamily::M4, VmFamily::R4] {
            let mut vms = catalog.family(family);
            vms.sort_by_key(|vm| vm.size);
            for pair in vms.windows(2) {
                assert!(pair[0].vcpus < pair[1].vcpus);
                assert!(pair[0].ram_gb < pair[1].ram_gb);
            }
        }
    }

    #[test]
    fn empty_catalog_reports_empty() {
        let empty = Catalog::new();
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        assert!(!Catalog::aws().is_empty());
    }
}
