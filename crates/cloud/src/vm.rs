//! Virtual-machine shapes.

use serde::{Deserialize, Serialize};

/// EC2-style instance families used across the paper's three datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmFamily {
    /// Burstable general purpose (`t2`), used by the TensorFlow dataset.
    T2,
    /// Compute optimized (`c4`).
    C4,
    /// General purpose (`m4`).
    M4,
    /// Memory optimized (`r4`).
    R4,
    /// Memory optimized, previous generation (`r3`).
    R3,
    /// Storage optimized (`i2`).
    I2,
}

impl VmFamily {
    /// Lowercase family prefix used in instance names (e.g. `"c4"`).
    #[must_use]
    pub fn prefix(self) -> &'static str {
        match self {
            VmFamily::T2 => "t2",
            VmFamily::C4 => "c4",
            VmFamily::M4 => "m4",
            VmFamily::R4 => "r4",
            VmFamily::R3 => "r3",
            VmFamily::I2 => "i2",
        }
    }
}

impl std::fmt::Display for VmFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.prefix())
    }
}

/// Instance sizes used across the paper's datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VmSize {
    /// `small` (t2 only).
    Small,
    /// `medium` (t2 only).
    Medium,
    /// `large`.
    Large,
    /// `xlarge`.
    Xlarge,
    /// `2xlarge`.
    Xlarge2,
}

impl VmSize {
    /// The suffix used in instance names (e.g. `"2xlarge"`).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            VmSize::Small => "small",
            VmSize::Medium => "medium",
            VmSize::Large => "large",
            VmSize::Xlarge => "xlarge",
            VmSize::Xlarge2 => "2xlarge",
        }
    }
}

impl std::fmt::Display for VmSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.suffix())
    }
}

/// One virtual-machine shape: capacity, relative speed and on-demand price.
///
/// The `relative_core_speed` and `network_gbps` fields feed the analytic job
/// simulators (they are not visible to the optimizer, which only ever sees
/// measured runtimes and prices).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmType {
    /// Instance family.
    pub family: VmFamily,
    /// Instance size.
    pub size: VmSize,
    /// Number of virtual CPUs.
    pub vcpus: u32,
    /// RAM in GiB.
    pub ram_gb: f64,
    /// On-demand price in dollars per hour.
    pub price_per_hour: f64,
    /// Per-core speed relative to an `m4` core (1.0).
    pub relative_core_speed: f64,
    /// Network bandwidth in Gbit/s.
    pub network_gbps: f64,
}

impl VmType {
    /// Full instance name, e.g. `"c4.xlarge"`.
    #[must_use]
    pub fn name(&self) -> String {
        format!("{}.{}", self.family.prefix(), self.size.suffix())
    }

    /// Price in dollars per second (per-second billing).
    #[must_use]
    pub fn price_per_second(&self) -> f64 {
        self.price_per_hour / 3600.0
    }
}

impl std::fmt::Display for VmType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} vCPU, {} GB, ${}/h)",
            self.name(),
            self.vcpus,
            self.ram_gb,
            self.price_per_hour
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_vm() -> VmType {
        VmType {
            family: VmFamily::C4,
            size: VmSize::Xlarge,
            vcpus: 4,
            ram_gb: 7.5,
            price_per_hour: 0.199,
            relative_core_speed: 1.2,
            network_gbps: 1.0,
        }
    }

    #[test]
    fn names_are_composed_from_family_and_size() {
        assert_eq!(sample_vm().name(), "c4.xlarge");
        assert_eq!(VmFamily::T2.to_string(), "t2");
        assert_eq!(VmSize::Xlarge2.to_string(), "2xlarge");
    }

    #[test]
    fn per_second_price_is_hourly_price_divided_by_3600() {
        let vm = sample_vm();
        assert!((vm.price_per_second() * 3600.0 - vm.price_per_hour).abs() < 1e-12);
    }

    #[test]
    fn sizes_are_ordered() {
        assert!(VmSize::Small < VmSize::Medium);
        assert!(VmSize::Large < VmSize::Xlarge);
        assert!(VmSize::Xlarge < VmSize::Xlarge2);
    }

    #[test]
    fn display_mentions_the_name_and_price() {
        let text = sample_vm().to_string();
        assert!(text.contains("c4.xlarge"));
        assert!(text.contains("0.199"));
    }
}
