//! Cloud substrate for the Lynceus reproduction.
//!
//! The paper profiles jobs on AWS EC2: the TensorFlow jobs use the `t2`
//! family (Table 2), the Scout jobs the `{C4, R4, M4}` families and the
//! CherryPick jobs the `{C4, M4, R3, I2}` families, each in sizes
//! `{large, xlarge, 2xlarge}`. This crate models what the optimizer and the
//! simulator need to know about that infrastructure:
//!
//! * [`VmType`] and [`Catalog`] — machine shapes (vCPUs, RAM, relative
//!   per-core speed, network bandwidth) and their on-demand prices;
//! * [`ClusterSpec`] — `N` identical VMs plus aggregate capacity and price;
//! * [`billing`] — per-second billing arithmetic (the paper assumes
//!   pay-by-the-second pricing, Section 2) and a seeded step-indexed
//!   spot-price series for fault-injection experiments;
//! * [`setup`] — the optional setup/switching-cost model of Section 4.4.
//!
//! # Example
//!
//! ```
//! use lynceus_cloud::{Catalog, ClusterSpec};
//!
//! let catalog = Catalog::aws();
//! let vm = catalog.get("t2.xlarge").unwrap();
//! let cluster = ClusterSpec::new(vm.clone(), 8);
//! assert_eq!(cluster.total_vcpus(), 32);
//! // Cost of holding the cluster for 10 minutes.
//! let cost = cluster.cost_for_seconds(600.0);
//! assert!(cost > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod billing;
pub mod catalog;
pub mod cluster;
pub mod setup;
pub mod vm;

pub use billing::{cost_for, BillingGranularity, SpotPriceSeries};
pub use catalog::Catalog;
pub use cluster::ClusterSpec;
pub use setup::SetupCostModel;
pub use vm::{VmFamily, VmSize, VmType};
