//! CART-style regression trees.
//!
//! The bagging ensemble used as Lynceus' default surrogate is built out of
//! *random* regression trees: each tree is trained on a bootstrap resample of
//! the training set and, optionally, considers only a random subset of the
//! features at every split (the Weka `RandomTree` behaviour). The splitting
//! criterion is variance reduction, the standard CART criterion for
//! regression.

use crate::model::{FeatureMatrix, Prediction, Surrogate, TrainingSet};
use lynceus_math::rng::SeededRng;
use serde::{Deserialize, Serialize};

/// A node of the fitted tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    /// Internal split: go left when `features[feature] <= threshold`.
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    /// Leaf: predict the mean of the samples that reached it.
    Leaf { value: f64, count: usize },
}

/// Sentinel in [`FlatNodes::feature`] marking a leaf.
const FLAT_LEAF: u32 = u32::MAX;

/// The flat struct-of-arrays form of a fitted tree, derived from the
/// pointer/enum [`Node`] representation at fit time and used by every hot
/// traversal.
///
/// Nodes are renumbered so a split's two children are *adjacent*
/// (`child[n]` and `child[n] + 1`), which turns descent into an arithmetic
/// select — `node = child[n] + (features[feature[n]] > threshold[n])` — with
/// no enum discriminant to decode and no branch to mispredict on the
/// left/right decision. Leaves reuse the `threshold` lane for their value,
/// so one cache line of `threshold` serves both node kinds.
///
/// The pointer form in [`RegressionTree::nodes`] stays the authoritative
/// (and serialized) representation; this table is a derived cache, excluded
/// from equality so flat-carrying and pointer-only fits of the same data
/// still compare equal.
#[derive(Debug, Clone, Default)]
struct FlatNodes {
    /// Split feature per node; [`FLAT_LEAF`] marks a leaf.
    feature: Vec<u32>,
    /// Split threshold per split node; the leaf *value* per leaf node.
    threshold: Vec<f64>,
    /// Base index of the node's two adjacent children (left child at
    /// `child[n]`, right child at `child[n] + 1`); 0 (never read) for
    /// leaves.
    child: Vec<u32>,
}

impl FlatNodes {
    /// Builds the flat table from the pointer nodes, renumbering so each
    /// split's children are adjacent.
    fn build(nodes: &[Node]) -> Self {
        let mut flat = Self {
            feature: vec![0; nodes.len()],
            threshold: vec![0.0; nodes.len()],
            child: vec![0; nodes.len()],
        };
        if nodes.is_empty() {
            return flat;
        }
        let mut next = 1u32;
        let mut work = vec![(0usize, 0u32)];
        while let Some((ptr, slot)) = work.pop() {
            let slot = slot as usize;
            match &nodes[ptr] {
                Node::Leaf { value, .. } => {
                    flat.feature[slot] = FLAT_LEAF;
                    flat.threshold[slot] = *value;
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let base = next;
                    next += 2;
                    flat.feature[slot] =
                        u32::try_from(*feature).expect("feature index exceeds u32");
                    flat.threshold[slot] = *threshold;
                    flat.child[slot] = base;
                    work.push((*left, base));
                    work.push((*right, base + 1));
                }
            }
        }
        flat
    }

    fn is_empty(&self) -> bool {
        self.feature.is_empty()
    }

    /// Branchless-select descent of one row. Matches the pointer walk bit
    /// for bit: out-of-range features read as 0.0 and a NaN comparison is
    /// false, so `!(x <= threshold)` sends NaN right exactly like the
    /// pointer form's `if x <= threshold { left } else { right }`.
    // The negated partial-ord comparison is the point: `partial_cmp` would
    // reintroduce a branch and obscure the NaN-goes-right equivalence.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    #[inline]
    fn descend(&self, features: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            let feature = self.feature[node];
            if feature == FLAT_LEAF {
                return self.threshold[node];
            }
            let x = features.get(feature as usize).copied().unwrap_or(0.0);
            node = self.child[node] as usize + usize::from(!(x <= self.threshold[node]));
        }
    }

    /// Block traversal: descends `rows` through the tree four at a time.
    /// The four in-flight descents are independent memory chains, so the
    /// loads of one lane overlap the latency of the others; each row's
    /// value is computed independently (no accumulation), so the result is
    /// position-for-position identical to calling [`FlatNodes::descend`]
    /// per row.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // same NaN semantic as `descend`
    fn descend_rows_into(&self, features: &FeatureMatrix, rows: &[usize], out: &mut [f64]) {
        debug_assert_eq!(rows.len(), out.len());
        let mut row_chunks = rows.chunks_exact(4);
        let mut out_chunks = out.chunks_exact_mut(4);
        for (row4, out4) in (&mut row_chunks).zip(&mut out_chunks) {
            let lanes = [
                features.row(row4[0]),
                features.row(row4[1]),
                features.row(row4[2]),
                features.row(row4[3]),
            ];
            let mut node = [0usize; 4];
            loop {
                let mut active = false;
                for lane in 0..4 {
                    let feature = self.feature[node[lane]];
                    if feature != FLAT_LEAF {
                        active = true;
                        let x = lanes[lane].get(feature as usize).copied().unwrap_or(0.0);
                        node[lane] = self.child[node[lane]] as usize
                            + usize::from(!(x <= self.threshold[node[lane]]));
                    }
                }
                if !active {
                    break;
                }
            }
            for lane in 0..4 {
                out4[lane] = self.threshold[node[lane]];
            }
        }
        for (slot, &row) in out_chunks
            .into_remainder()
            .iter_mut()
            .zip(row_chunks.remainder())
        {
            *slot = self.descend(features.row(row));
        }
    }
}

/// A regression tree with variance-reduction splits.
///
/// # Example
///
/// ```
/// use lynceus_learners::{RegressionTree, Surrogate, TrainingSet};
///
/// let mut data = TrainingSet::new(1);
/// for i in 0..16 {
///     let x = i as f64;
///     data.push(vec![x], if x < 8.0 { 1.0 } else { 100.0 });
/// }
/// let mut tree = RegressionTree::new();
/// tree.fit(&data);
/// assert!(tree.predict(&[2.0]).mean < 10.0);
/// assert!(tree.predict(&[14.0]).mean > 50.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    max_depth: usize,
    min_samples_leaf: usize,
    /// Number of features examined at each split; `None` means all of them.
    feature_subsample: Option<usize>,
    seed: u64,
    nodes: Vec<Node>,
    /// Derived struct-of-arrays traversal cache (see [`FlatNodes`]), built
    /// by the optimized fit path; empty on pointer-only fits
    /// ([`RegressionTree::fit_reference`]). Never serialized or compared:
    /// the pointer `nodes` stay the authoritative representation.
    flat: FlatNodes,
    fitted: bool,
}

/// Equality over the authoritative state only: the derived [`FlatNodes`]
/// cache is excluded, so an optimized fit (which carries the flat table)
/// and a reference fit of the same data still compare equal — the
/// `reference_build_is_bit_identical` test depends on this.
impl PartialEq for RegressionTree {
    fn eq(&self, other: &Self) -> bool {
        self.max_depth == other.max_depth
            && self.min_samples_leaf == other.min_samples_leaf
            && self.feature_subsample == other.feature_subsample
            && self.seed == other.seed
            && self.nodes == other.nodes
            && self.fitted == other.fitted
    }
}

impl Default for RegressionTree {
    fn default() -> Self {
        Self::new()
    }
}

impl RegressionTree {
    /// Creates a tree with the default hyper-parameters (unbounded depth
    /// capped at 32, leaves of at least one sample, all features considered at
    /// every split).
    #[must_use]
    pub fn new() -> Self {
        Self {
            max_depth: 32,
            min_samples_leaf: 1,
            feature_subsample: None,
            seed: 0,
            nodes: Vec::new(),
            flat: FlatNodes::default(),
            fitted: false,
        }
    }

    /// Sets the maximum tree depth.
    #[must_use]
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth.max(1);
        self
    }

    /// Sets the minimum number of samples per leaf.
    #[must_use]
    pub fn with_min_samples_leaf(mut self, min: usize) -> Self {
        self.min_samples_leaf = min.max(1);
        self
    }

    /// Considers only `k` randomly chosen features at each split (the
    /// "random tree" behaviour used inside bagging ensembles).
    #[must_use]
    pub fn with_feature_subsample(mut self, k: usize) -> Self {
        self.feature_subsample = Some(k.max(1));
        self
    }

    /// Sets the seed driving the random feature selection.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of nodes in the fitted tree (0 before fitting).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Fits the tree on a multiset of observations: `indices` lists rows of
    /// `data`, possibly with repetitions (the shape produced by bootstrap
    /// resampling — a row drawn `k` times appears `k` times). An empty index
    /// list leaves the tree unfitted.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn fit_indexed(&mut self, data: &TrainingSet, indices: &[usize]) {
        self.nodes.clear();
        self.flat = FlatNodes::default();
        self.fitted = false;
        if indices.is_empty() {
            return;
        }
        assert!(
            indices.iter().all(|&i| i < data.len()),
            "resample index out of range"
        );
        let mut rng = SeededRng::new(self.seed);
        let mut owned: Vec<usize> = indices.to_vec();
        let mut workspace = BuildWorkspace {
            values: Vec::with_capacity(indices.len()),
            partition: Vec::with_capacity(indices.len()),
        };
        let root = self.build(data, &mut owned, 0, &mut rng, &mut workspace);
        debug_assert_eq!(root, 0, "the root must be the first node");
        // Flatten once per fit: every subsequent traversal of the tree runs
        // on the contiguous table instead of chasing enum nodes.
        self.flat = FlatNodes::build(&self.nodes);
        self.fitted = true;
    }

    /// The original (pre-overhaul) tree construction, retained verbatim so
    /// the optimizer's naive reference engine and the speedup benchmarks
    /// measure the cost profile the speculation-engine rewrite replaced:
    /// one heap-allocated feature vector per observation (the original
    /// training-set layout), a materialized target vector, per-feature
    /// `(value, target)` collections and prefix-sum arrays allocated at
    /// every node.
    ///
    /// Produces **bit-identical** nodes to [`Surrogate::fit`] on the same
    /// observations (the optimized build performs the same arithmetic in
    /// the same order, just flat and without the allocations); asserted by
    /// the `reference_build_is_bit_identical` test.
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `targets` have different lengths.
    pub fn fit_reference(&mut self, rows: &[Vec<f64>], targets: &[f64]) {
        assert_eq!(rows.len(), targets.len(), "one target per row");
        self.nodes.clear();
        // No flat table: reference-fitted trees keep the original
        // pointer-walk cost profile the benchmarks compare against.
        self.flat = FlatNodes::default();
        self.fitted = false;
        if rows.is_empty() {
            return;
        }
        let indices: Vec<usize> = (0..rows.len()).collect();
        let mut rng = SeededRng::new(self.seed);
        let root = self.build_reference(rows, targets, &indices, 0, &mut rng);
        debug_assert_eq!(root, 0, "the root must be the first node");
        self.fitted = true;
    }

    /// The retained original node construction behind
    /// [`RegressionTree::fit_reference`].
    #[allow(clippy::too_many_lines)]
    fn build_reference(
        &mut self,
        rows: &[Vec<f64>],
        all_targets: &[f64],
        indices: &[usize],
        depth: usize,
        rng: &mut SeededRng,
    ) -> usize {
        let targets: Vec<f64> = indices.iter().map(|&i| all_targets[i]).collect();
        let mean = targets.iter().sum::<f64>() / targets.len() as f64;

        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf {
                value: mean,
                count: indices.len(),
            });
            nodes.len() - 1
        };

        if depth >= self.max_depth
            || indices.len() < 2 * self.min_samples_leaf
            || targets.iter().all(|&t| (t - targets[0]).abs() < 1e-12)
        {
            return make_leaf(&mut self.nodes);
        }

        let dims = rows[0].len();
        let candidate_features: Vec<usize> = match self.feature_subsample {
            Some(k) if k < dims => rng.sample_indices(dims, k),
            _ => (0..dims).collect(),
        };

        let parent_sse: f64 = targets.iter().map(|t| (t - mean) * (t - mean)).sum();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        for &feature in &candidate_features {
            let mut values: Vec<(f64, f64)> = indices
                .iter()
                .map(|&i| (rows[i][feature], all_targets[i]))
                .collect();
            values.sort_by(|a, b| a.0.total_cmp(&b.0));

            // Prefix sums over the sorted order let us evaluate every split
            // in O(n) per feature.
            let n = values.len();
            let mut prefix_sum = vec![0.0; n + 1];
            let mut prefix_sq = vec![0.0; n + 1];
            for (i, &(_, t)) in values.iter().enumerate() {
                prefix_sum[i + 1] = prefix_sum[i] + t;
                prefix_sq[i + 1] = prefix_sq[i] + t * t;
            }
            for split in self.min_samples_leaf..=(n - self.min_samples_leaf) {
                if split == 0 || split == n {
                    continue;
                }
                // Only split between distinct feature values.
                if (values[split - 1].0 - values[split].0).abs() < 1e-12 {
                    continue;
                }
                let left_n = split as f64;
                let right_n = (n - split) as f64;
                let left_sum = prefix_sum[split];
                let right_sum = prefix_sum[n] - left_sum;
                let left_sq = prefix_sq[split];
                let right_sq = prefix_sq[n] - left_sq;
                let left_sse = left_sq - left_sum * left_sum / left_n;
                let right_sse = right_sq - right_sum * right_sum / right_n;
                let total = left_sse + right_sse;
                if best.map_or(total < parent_sse - 1e-12, |(_, _, b)| total < b) {
                    let threshold = 0.5 * (values[split - 1].0 + values[split].0);
                    best = Some((feature, threshold, total));
                }
            }
        }

        let Some((feature, threshold, _)) = best else {
            return make_leaf(&mut self.nodes);
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| rows[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return make_leaf(&mut self.nodes);
        }

        // Reserve this node's slot before recursing so children indices are
        // stable.
        self.nodes.push(Node::Leaf {
            value: mean,
            count: indices.len(),
        });
        let me = self.nodes.len() - 1;
        let left = self.build_reference(rows, all_targets, &left_idx, depth + 1, rng);
        let right = self.build_reference(rows, all_targets, &right_idx, depth + 1, rng);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    /// The point prediction at a feature vector (0 for an unfitted tree).
    ///
    /// This is the allocation-free core of [`Surrogate::predict`], exposed so
    /// ensembles can traverse tree-major without building a [`Prediction`]
    /// per member. Runs on the flat struct-of-arrays table when the tree
    /// carries one (every optimized fit does), falling back to the pointer
    /// walk otherwise; the two are bit-identical
    /// (`flat_descent_is_bit_identical_to_pointer_descent`).
    #[must_use]
    pub fn predict_value(&self, features: &[f64]) -> f64 {
        if !self.fitted {
            return 0.0;
        }
        if self.flat.is_empty() {
            return self.predict_value_pointer(features);
        }
        self.flat.descend(features)
    }

    /// The original pointer/enum descent (0 for an unfitted tree), retained
    /// as the comparison baseline for the flat traversal: the equivalence
    /// sweeps pin [`RegressionTree::predict_value`] bit-identical to this
    /// walk, and the `micro_components` bench measures the flat speedup
    /// against it.
    #[must_use]
    pub fn predict_value_pointer(&self, features: &[f64]) -> f64 {
        if !self.fitted {
            return 0.0;
        }
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value, .. } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Fills `out[i]` with the point prediction at row `rows[i]` of the
    /// matrix — the block-traversal form of [`RegressionTree::predict_value`]:
    /// the whole row block descends through this one tree (four rows in
    /// flight at a time on the flat table) before the caller moves to the
    /// next tree, keeping the tree's node table hot in cache for the whole
    /// block. Position-for-position bit-identical to calling
    /// [`RegressionTree::predict_value`] per row.
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `out` have different lengths.
    pub fn predict_values_into(&self, features: &FeatureMatrix, rows: &[usize], out: &mut [f64]) {
        assert_eq!(rows.len(), out.len(), "one output slot per row");
        if !self.fitted {
            out.fill(0.0);
            return;
        }
        if self.flat.is_empty() {
            for (slot, &row) in out.iter_mut().zip(rows) {
                *slot = self.predict_value_pointer(features.row(row));
            }
        } else {
            self.flat.descend_rows_into(features, rows, out);
        }
    }

    fn build(
        &mut self,
        data: &TrainingSet,
        indices: &mut [usize],
        depth: usize,
        rng: &mut SeededRng,
        workspace: &mut BuildWorkspace,
    ) -> usize {
        // Aggregate the node's targets in index order (the same accumulation
        // order a materialized target vector would produce).
        let target_of = |i: usize| data.targets()[i];
        let mean = indices.iter().map(|&i| target_of(i)).sum::<f64>() / indices.len() as f64;

        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf {
                value: mean,
                count: indices.len(),
            });
            nodes.len() - 1
        };

        let first_target = target_of(indices[0]);
        if depth >= self.max_depth
            || indices.len() < 2 * self.min_samples_leaf
            || indices
                .iter()
                .all(|&i| (target_of(i) - first_target).abs() < 1e-12)
        {
            return make_leaf(&mut self.nodes);
        }

        let dims = data.dims();
        let candidate_features: Vec<usize> = match self.feature_subsample {
            Some(k) if k < dims => rng.sample_indices(dims, k),
            _ => (0..dims).collect(),
        };

        let parent_sse: f64 = indices
            .iter()
            .map(|&i| {
                let d = target_of(i) - mean;
                d * d
            })
            .sum();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        for &feature in &candidate_features {
            // `workspace.values` is reusable: split selection finishes
            // before the recursion below, so one buffer serves every node of
            // the tree.
            let values = &mut workspace.values;
            values.clear();
            values.extend(
                indices
                    .iter()
                    .map(|&i| (data.feature(i, feature), target_of(i))),
            );
            values.sort_by(|a, b| a.0.total_cmp(&b.0));

            // Running sums over the sorted order evaluate every split in
            // O(n) per feature without materializing prefix arrays; the
            // accumulation order (and hence every float) is identical to the
            // prefix-array formulation.
            let n = values.len();
            let mut total_sum = 0.0;
            let mut total_sq = 0.0;
            for &(_, t) in values.iter() {
                total_sum += t;
                total_sq += t * t;
            }
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for split in 1..n {
                let t = values[split - 1].1;
                left_sum += t;
                left_sq += t * t;
                if split < self.min_samples_leaf || split > n - self.min_samples_leaf {
                    continue;
                }
                // Only split between distinct feature values.
                if (values[split - 1].0 - values[split].0).abs() < 1e-12 {
                    continue;
                }
                let left_n = split as f64;
                let right_n = (n - split) as f64;
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let left_sse = left_sq - left_sum * left_sum / left_n;
                let right_sse = right_sq - right_sum * right_sum / right_n;
                let total = left_sse + right_sse;
                if best.map_or(total < parent_sse - 1e-12, |(_, _, b)| total < b) {
                    let threshold = 0.5 * (values[split - 1].0 + values[split].0);
                    best = Some((feature, threshold, total));
                }
            }
        }

        let Some((feature, threshold, _)) = best else {
            return make_leaf(&mut self.nodes);
        };

        let goes_left = |i: usize| data.feature(i, feature) <= threshold;
        let left_len = indices.iter().filter(|&&i| goes_left(i)).count();
        if left_len == 0 || left_len == indices.len() {
            return make_leaf(&mut self.nodes);
        }
        // Stable in-place partition via the shared scratch buffer: the same
        // sequences `Iterator::partition` would produce, without allocating
        // per node.
        stable_partition_in_place(indices, &mut workspace.partition, goes_left);

        // Reserve this node's slot before recursing so children indices are
        // stable.
        self.nodes.push(Node::Leaf {
            value: mean,
            count: indices.len(),
        });
        let me = self.nodes.len() - 1;
        let (left_idx, right_idx) = indices.split_at_mut(left_len);
        let left = self.build(data, left_idx, depth + 1, rng, workspace);
        let right = self.build(data, right_idx, depth + 1, rng, workspace);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }
}

/// Stable in-place partition: elements satisfying `keep_left` move to the
/// front, the rest to the back, both sides preserving relative order — the
/// sequences `Iterator::partition` would produce, without allocating per
/// call (`scratch` is reused).
fn stable_partition_in_place<F: Fn(usize) -> bool>(
    items: &mut [usize],
    scratch: &mut Vec<usize>,
    keep_left: F,
) {
    scratch.clear();
    let mut write = 0usize;
    for read in 0..items.len() {
        let i = items[read];
        if keep_left(i) {
            items[write] = i;
            write += 1;
        } else {
            scratch.push(i);
        }
    }
    items[write..].copy_from_slice(scratch);
}

/// Reusable buffers of one optimized tree construction.
struct BuildWorkspace {
    /// `(feature value, target)` pairs of the node under consideration.
    values: Vec<(f64, f64)>,
    /// Scratch for the stable in-place index partition.
    partition: Vec<usize>,
}

impl Surrogate for RegressionTree {
    fn fit(&mut self, data: &TrainingSet) {
        let indices: Vec<usize> = (0..data.len()).collect();
        self.fit_indexed(data, &indices);
    }

    fn predict(&self, features: &[f64]) -> Prediction {
        Prediction::certain(self.predict_value(features))
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn fresh_clone(&self) -> Box<dyn Surrogate> {
        let mut clone = self.clone();
        clone.nodes.clear();
        clone.flat = FlatNodes::default();
        clone.fitted = false;
        Box::new(clone)
    }

    fn predict_rows(
        &self,
        features: &crate::model::FeatureMatrix,
        rows: &[usize],
        out: &mut Vec<Prediction>,
    ) {
        out.clear();
        out.extend(
            rows.iter()
                .map(|&r| Prediction::certain(self.predict_value(features.row(r)))),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> TrainingSet {
        let mut data = TrainingSet::new(2);
        for i in 0..20 {
            let x = i as f64;
            let y = if x < 10.0 { 5.0 } else { 50.0 };
            data.push(vec![x, 0.0], y);
        }
        data
    }

    #[test]
    fn learns_a_step_function() {
        let mut tree = RegressionTree::new();
        tree.fit(&step_data());
        assert!(tree.is_fitted());
        assert!((tree.predict(&[3.0, 0.0]).mean - 5.0).abs() < 1e-9);
        assert!((tree.predict(&[15.0, 0.0]).mean - 50.0).abs() < 1e-9);
    }

    #[test]
    fn interpolates_training_points_exactly_with_deep_tree() {
        let mut data = TrainingSet::new(1);
        for i in 0..10 {
            data.push(vec![i as f64], (i * i) as f64);
        }
        let mut tree = RegressionTree::new();
        tree.fit(&data);
        for i in 0..10 {
            let p = tree.predict(&[i as f64]);
            assert!(
                (p.mean - (i * i) as f64).abs() < 1e-9,
                "prediction at {i} was {}",
                p.mean
            );
        }
    }

    #[test]
    fn depth_limit_produces_a_stump() {
        let mut tree = RegressionTree::new().with_max_depth(1);
        tree.fit(&step_data());
        // A depth-1 tree has at most 3 nodes: root + two leaves.
        assert!(tree.node_count() <= 3);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let mut tree = RegressionTree::new().with_min_samples_leaf(10);
        let data = step_data();
        tree.fit(&data);
        // With 20 samples and 10 per leaf, only one split is possible.
        assert!(tree.node_count() <= 3);
    }

    #[test]
    fn unfitted_and_empty_fits_predict_zero() {
        let tree = RegressionTree::new();
        assert!(!tree.is_fitted());
        assert_eq!(tree.predict(&[1.0]).mean, 0.0);
        let mut tree = RegressionTree::new();
        tree.fit(&TrainingSet::new(1));
        assert!(!tree.is_fitted());
    }

    #[test]
    fn constant_targets_yield_a_single_leaf() {
        let mut data = TrainingSet::new(1);
        for i in 0..8 {
            data.push(vec![i as f64], 7.0);
        }
        let mut tree = RegressionTree::new();
        tree.fit(&data);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[3.0]).mean, 7.0);
    }

    #[test]
    fn feature_subsampling_still_learns() {
        let mut data = TrainingSet::new(3);
        for i in 0..30 {
            let x = i as f64;
            data.push(vec![x, -x, x * 2.0], if x < 15.0 { 0.0 } else { 10.0 });
        }
        let mut tree = RegressionTree::new().with_feature_subsample(1).with_seed(5);
        tree.fit(&data);
        let low = tree.predict(&[2.0, -2.0, 4.0]).mean;
        let high = tree.predict(&[25.0, -25.0, 50.0]).mean;
        assert!(high > low);
    }

    #[test]
    fn fresh_clone_is_unfitted_but_keeps_hyperparameters() {
        let mut tree = RegressionTree::new().with_max_depth(4);
        tree.fit(&step_data());
        let clone = tree.fresh_clone();
        assert!(!clone.is_fitted());
    }

    #[test]
    fn reference_build_is_bit_identical() {
        use lynceus_math::rng::SeededRng;
        let mut rng = SeededRng::new(77);
        for _ in 0..20 {
            let mut data = TrainingSet::new(3);
            let n = 3 + rng.below(40);
            for _ in 0..n {
                data.push(
                    vec![
                        rng.uniform(-10.0, 10.0),
                        rng.uniform(0.0, 5.0),
                        rng.uniform(-1.0, 1.0),
                    ],
                    rng.uniform(-100.0, 100.0),
                );
            }
            let mut optimized = RegressionTree::new()
                .with_feature_subsample(2)
                .with_seed(rng.next_u64());
            let mut reference = optimized.clone();
            optimized.fit(&data);
            let rows: Vec<Vec<f64>> = data.feature_rows().map(<[f64]>::to_vec).collect();
            reference.fit_reference(&rows, data.targets());
            assert_eq!(optimized, reference, "builds diverged on {n} samples");
        }
    }

    /// Seeded property sweep pinning the flat struct-of-arrays descent
    /// bit-identical to the retained pointer walk, over random fitted trees
    /// and adversarial feature values: NaN (must go right — the comparison
    /// is false), ±infinity, subnormals, signed zero, rows hitting split
    /// thresholds *exactly* (the `<=` boundary) and one ULP past them, and
    /// short rows whose missing features read as 0.0.
    #[test]
    fn flat_descent_is_bit_identical_to_pointer_descent() {
        use crate::model::FeatureMatrix;
        use lynceus_math::rng::SeededRng;
        let mut rng = SeededRng::new(0xF1A7);
        for round in 0..30usize {
            let dims = 1 + round % 4;
            let n = 2 + rng.below(60);
            let mut data = TrainingSet::new(dims);
            for _ in 0..n {
                data.push(
                    (0..dims).map(|_| rng.uniform(-50.0, 50.0)).collect(),
                    rng.uniform(-100.0, 100.0),
                );
            }
            let mut tree = RegressionTree::new()
                .with_max_depth(1 + rng.below(12))
                .with_min_samples_leaf(1 + rng.below(3))
                .with_feature_subsample(1 + rng.below(dims))
                .with_seed(rng.next_u64());
            tree.fit(&data);
            assert!(!tree.flat.is_empty(), "optimized fit must carry the table");

            let mut queries: Vec<Vec<f64>> = (0..20)
                .map(|_| (0..dims).map(|_| rng.uniform(-60.0, 60.0)).collect())
                .collect();
            for special in [
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::MIN_POSITIVE,       // smallest normal
                f64::MIN_POSITIVE / 2.0, // subnormal
                5e-324,                  // smallest subnormal
                -5e-324,
                -0.0,
            ] {
                queries.push(vec![special; dims]);
                let mut mixed = vec![1.0; dims];
                mixed[rng.below(dims)] = special;
                queries.push(mixed);
            }
            for node in &tree.nodes {
                let Node::Split {
                    feature, threshold, ..
                } = node
                else {
                    continue;
                };
                let mut exact = vec![0.0; dims];
                exact[*feature] = *threshold; // exactly on the `<=` boundary
                queries.push(exact.clone());
                exact[*feature] = f64::from_bits(threshold.to_bits() + 1); // one ULP off
                queries.push(exact);
            }
            queries.push(Vec::new()); // every feature out of range → 0.0

            for query in &queries {
                let flat = tree.predict_value(query);
                let pointer = tree.predict_value_pointer(query);
                assert_eq!(
                    flat.to_bits(),
                    pointer.to_bits(),
                    "flat {flat} != pointer {pointer} on {query:?} (round {round})"
                );
            }

            // The block traversal (including the 4-wide interleaved path and
            // its remainder tail) must match the per-row walk bit for bit.
            let matrix = FeatureMatrix::from_rows(dims, queries.iter().filter(|q| q.len() == dims));
            let rows: Vec<usize> = (0..matrix.rows()).collect();
            let mut block = vec![0.0; rows.len()];
            tree.predict_values_into(&matrix, &rows, &mut block);
            for (&row, &value) in rows.iter().zip(&block) {
                let pointer = tree.predict_value_pointer(matrix.row(row));
                assert_eq!(
                    value.to_bits(),
                    pointer.to_bits(),
                    "block row {row} diverged (round {round})"
                );
            }
        }
    }

    #[test]
    fn flat_table_is_rebuilt_per_fit_and_absent_on_reference_fits() {
        let data = step_data();
        let mut tree = RegressionTree::new();
        tree.fit(&data);
        assert!(!tree.flat.is_empty());
        assert_eq!(tree.flat.feature.len(), tree.nodes.len());
        let mut reference = RegressionTree::new();
        let rows: Vec<Vec<f64>> = data.feature_rows().map(<[f64]>::to_vec).collect();
        reference.fit_reference(&rows, data.targets());
        assert!(
            reference.flat.is_empty(),
            "reference fits stay pointer-only"
        );
        // …and still predict identically through the dispatching entry point.
        for x in [-3.0, 2.0, 9.99, 10.0, 10.01, 25.0] {
            assert_eq!(
                tree.predict_value(&[x, 0.0]).to_bits(),
                reference.predict_value(&[x, 0.0]).to_bits()
            );
        }
        // Refitting on an empty index list drops the stale table.
        tree.fit_indexed(&data, &[]);
        assert!(tree.flat.is_empty());
        assert!(!tree.is_fitted());
    }

    #[test]
    fn single_sample_fit_is_a_leaf() {
        let mut data = TrainingSet::new(2);
        data.push(vec![1.0, 2.0], 42.0);
        let mut tree = RegressionTree::new();
        tree.fit(&data);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[9.0, 9.0]).mean, 42.0);
    }
}
