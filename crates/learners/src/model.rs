//! The surrogate-model abstraction and its training data.

use serde::{Deserialize, Serialize};

/// A labelled training set: one feature vector (the encoded configuration)
/// and one target (the measured cost) per profiled configuration.
///
/// Features are stored row-major in one flat allocation, so cloning a
/// training set — which the speculation engine does once per incremental
/// surrogate extension — is two `memcpy`s instead of one heap allocation per
/// observation, and row access during tree construction stays
/// cache-friendly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSet {
    dims: usize,
    features: Vec<f64>,
    targets: Vec<f64>,
}

impl TrainingSet {
    /// Creates an empty training set for feature vectors of length `dims`.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    #[must_use]
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "feature vectors need at least one dimension");
        Self {
            dims,
            features: Vec::new(),
            targets: Vec::new(),
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if the feature vector has the wrong length or contains
    /// non-finite values, or if the target is not finite.
    pub fn push(&mut self, features: Vec<f64>, target: f64) {
        assert_eq!(
            features.len(),
            self.dims,
            "expected {} features, got {}",
            self.dims,
            features.len()
        );
        assert!(
            features.iter().all(|f| f.is_finite()),
            "features must be finite"
        );
        assert!(target.is_finite(), "target must be finite");
        self.features.extend_from_slice(&features);
        self.targets.push(target);
    }

    /// Adds one observation from a borrowed feature row (no intermediate
    /// `Vec` required).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`TrainingSet::push`].
    pub fn push_row(&mut self, features: &[f64], target: f64) {
        assert_eq!(
            features.len(),
            self.dims,
            "expected {} features, got {}",
            self.dims,
            features.len()
        );
        assert!(
            features.iter().all(|f| f.is_finite()),
            "features must be finite"
        );
        assert!(target.is_finite(), "target must be finite");
        self.features.extend_from_slice(features);
        self.targets.push(target);
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True if no observation has been added yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Dimensionality of the feature vectors.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Iterates the feature vectors, in insertion order.
    pub fn feature_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.features.chunks_exact(self.dims)
    }

    /// The feature row of observation `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn feature_row(&self, index: usize) -> &[f64] {
        &self.features[index * self.dims..(index + 1) * self.dims]
    }

    /// One feature value of one observation (the hot accessor of tree
    /// construction).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn feature(&self, index: usize, dim: usize) -> f64 {
        debug_assert!(dim < self.dims);
        self.features[index * self.dims + dim]
    }

    /// The targets, in insertion order.
    #[must_use]
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// The observation at `index` as a `(features, target)` pair.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn observation(&self, index: usize) -> (&[f64], f64) {
        (self.feature_row(index), self.targets[index])
    }

    /// Mean of the targets; 0 for an empty set.
    #[must_use]
    pub fn target_mean(&self) -> f64 {
        if self.targets.is_empty() {
            0.0
        } else {
            self.targets.iter().sum::<f64>() / self.targets.len() as f64
        }
    }

    /// Minimum of the targets, if any observation exists.
    #[must_use]
    pub fn target_min(&self) -> Option<f64> {
        self.targets
            .iter()
            .copied()
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }

    /// Maximum of the targets, if any observation exists.
    #[must_use]
    pub fn target_max(&self) -> Option<f64> {
        self.targets
            .iter()
            .copied()
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }
}

/// A dense, row-major matrix of feature vectors.
///
/// The optimizer evaluates the surrogate at *every* untested configuration on
/// every (real or speculated) iteration; handing the model one contiguous
/// matrix instead of one `&[f64]` at a time lets tree ensembles traverse
/// tree-major (every row through tree 0, then every row through tree 1, …),
/// which touches each tree's nodes once per batch instead of once per row and
/// performs no per-row allocation.
///
/// Rows are indexed positionally; the optimizer stores one row per
/// configuration id so `row(id.index())` is the configuration's features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMatrix {
    dims: usize,
    data: Vec<f64>,
}

impl Default for FeatureMatrix {
    /// An empty single-column matrix — a placeholder for buffers that are
    /// [`FeatureMatrix::reset`] to the real dimensionality before use (the
    /// optimizer's per-decision row-block buffer is one).
    fn default() -> Self {
        Self {
            dims: 1,
            data: Vec::new(),
        }
    }
}

impl FeatureMatrix {
    /// Creates an empty matrix for feature vectors of length `dims`.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    #[must_use]
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "feature vectors need at least one dimension");
        Self {
            dims,
            data: Vec::new(),
        }
    }

    /// Drops every row and re-dimensions the matrix, keeping the backing
    /// allocation — for row-block buffers refilled once per batch.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    pub fn reset(&mut self, dims: usize) {
        assert!(dims > 0, "feature vectors need at least one dimension");
        self.dims = dims;
        self.data.clear();
    }

    /// Number of `f64` slots the backing allocation can hold without
    /// growing (a capacity fingerprint for buffer-reuse tests).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Builds a matrix from an iterator of rows.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0` or a row has the wrong length.
    pub fn from_rows<I, R>(dims: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[f64]>,
    {
        let mut matrix = Self::new(dims);
        for row in rows {
            matrix.push_row(row.as_ref());
        }
        matrix
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row has the wrong length.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.dims,
            "expected {} features, got {}",
            self.dims,
            row.len()
        );
        self.data.extend_from_slice(row);
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.data.len() / self.dims
    }

    /// True when the matrix holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality of the rows.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The row at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn row(&self, index: usize) -> &[f64] {
        &self.data[index * self.dims..(index + 1) * self.dims]
    }
}

/// A Gaussian predictive distribution produced by a surrogate model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted mean.
    pub mean: f64,
    /// Predictive standard deviation (0 when the model is certain).
    pub std: f64,
}

impl Prediction {
    /// A point prediction with no uncertainty.
    #[must_use]
    pub fn certain(mean: f64) -> Self {
        Self { mean, std: 0.0 }
    }
}

/// A regression model that maps feature vectors to Gaussian predictive
/// distributions.
///
/// Implementations must tolerate repeated refitting (the optimizer refits
/// after every profiled configuration and inside every simulated exploration
/// step) and must be `Send + Sync` so path simulations can run in parallel.
pub trait Surrogate: Send + Sync {
    /// Fits the model to the training set, replacing any previous fit.
    fn fit(&mut self, data: &TrainingSet);

    /// Predicts the target distribution at a feature vector.
    ///
    /// Calling `predict` before the first `fit` returns an uninformative
    /// prediction (`mean = 0`, `std = 0`); the optimizer never does this, but
    /// implementations must not panic.
    fn predict(&self, features: &[f64]) -> Prediction;

    /// True once `fit` has been called with at least one observation.
    fn is_fitted(&self) -> bool;

    /// Creates an unfitted clone of this model (same hyper-parameters, no
    /// training data). Used by the lookahead simulation, which must refit the
    /// surrogate on speculated training sets without disturbing the real one.
    fn fresh_clone(&self) -> Box<dyn Surrogate>;

    /// Predicts the target distribution at every row of a feature matrix.
    ///
    /// The default implementation loops over [`Surrogate::predict`];
    /// ensemble models override it with a tree-major traversal that visits
    /// each member once per batch and allocates nothing beyond the returned
    /// vector. The result is element-wise bit-identical to calling
    /// [`Surrogate::predict`] on each row.
    fn predict_batch(&self, features: &FeatureMatrix) -> Vec<Prediction> {
        (0..features.rows())
            .map(|i| self.predict(features.row(i)))
            .collect()
    }

    /// Predicts the target distribution at a subset of rows of a feature
    /// matrix, writing the results (aligned with `rows`) into `out`.
    ///
    /// `out` is cleared and refilled, so a caller that keeps the buffer
    /// around pays no allocation once the buffer has grown to the working-set
    /// size — this is the hot entry point of the optimizer's speculation
    /// engine, which re-scores the untested set on every simulated branch.
    /// The results are element-wise bit-identical to [`Surrogate::predict`].
    fn predict_rows(&self, features: &FeatureMatrix, rows: &[usize], out: &mut Vec<Prediction>) {
        out.clear();
        out.extend(rows.iter().map(|&r| self.predict(features.row(r))));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_set_accumulates_observations() {
        let mut data = TrainingSet::new(2);
        assert!(data.is_empty());
        data.push(vec![1.0, 2.0], 10.0);
        data.push(vec![3.0, 4.0], 20.0);
        assert_eq!(data.len(), 2);
        assert_eq!(data.dims(), 2);
        assert_eq!(data.observation(1), (&[3.0, 4.0][..], 20.0));
        assert_eq!(data.target_mean(), 15.0);
        assert_eq!(data.target_min(), Some(10.0));
        assert_eq!(data.target_max(), Some(20.0));
    }

    #[test]
    fn empty_training_set_statistics() {
        let data = TrainingSet::new(3);
        assert_eq!(data.target_mean(), 0.0);
        assert_eq!(data.target_min(), None);
        assert_eq!(data.target_max(), None);
    }

    #[test]
    #[should_panic(expected = "expected 2 features")]
    fn wrong_dimensionality_panics() {
        let mut data = TrainingSet::new(2);
        data.push(vec![1.0], 5.0);
    }

    #[test]
    #[should_panic(expected = "target must be finite")]
    fn non_finite_target_panics() {
        let mut data = TrainingSet::new(1);
        data.push(vec![1.0], f64::NAN);
    }

    #[test]
    fn certain_prediction_has_zero_std() {
        let p = Prediction::certain(4.2);
        assert_eq!(p.mean, 4.2);
        assert_eq!(p.std, 0.0);
    }
}
