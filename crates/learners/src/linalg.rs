//! Minimal dense linear algebra for the Gaussian-process surrogate.
//!
//! The GP only needs a symmetric positive-definite solve (Cholesky), so this
//! module provides a small row-major [`Matrix`] type, the Cholesky
//! factorization and triangular solves. Training sets in this problem are tiny
//! (at most a few hundred profiled configurations), so a straightforward
//! `O(n³)` implementation is more than fast enough.

use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Errors produced by the linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinalgError {
    /// The matrix is not square where a square matrix is required.
    NotSquare,
    /// Cholesky factorization failed: the matrix is not positive definite.
    NotPositiveDefinite,
    /// Dimension mismatch between operands.
    DimensionMismatch,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotSquare => write!(f, "matrix is not square"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            LinalgError::DimensionMismatch => write!(f, "operand dimensions do not match"),
        }
    }
}

impl std::error::Error for LinalgError {}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Identity matrix of order `n`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col] = value;
    }

    /// Matrix–vector product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch);
        }
        Ok((0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.get(r, c) * v[c]).sum::<f64>())
            .collect())
    }

    /// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
    /// matrix, returning the lower-triangular factor `L`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::NotPositiveDefinite`] when a non-positive pivot is
    /// encountered.
    pub fn cholesky(&self) -> Result<Matrix, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::NotSquare);
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(l)
    }
}

/// Solves `L·x = b` for lower-triangular `L` (forward substitution).
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if l.rows() != l.cols() || b.len() != l.rows() {
        return Err(LinalgError::DimensionMismatch);
    }
    let n = b.len();
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for (j, xj) in x.iter().enumerate().take(i) {
            sum -= l.get(i, j) * xj;
        }
        x[i] = sum / l.get(i, i);
    }
    Ok(x)
}

/// Solves `Lᵀ·x = b` for lower-triangular `L` (backward substitution).
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
pub fn solve_lower_transpose(l: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if l.rows() != l.cols() || b.len() != l.rows() {
        return Err(LinalgError::DimensionMismatch);
    }
    let n = b.len();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for (j, xj) in x.iter().enumerate().skip(i + 1) {
            sum -= l.get(j, i) * xj;
        }
        x[i] = sum / l.get(i, i);
    }
    Ok(x)
}

/// Solves the symmetric positive-definite system `A·x = b` given the Cholesky
/// factor `L` of `A` (i.e. computes `A⁻¹·b`).
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
pub fn cholesky_solve(l: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let y = solve_lower(l, b)?;
    solve_lower_transpose(l, &y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_matrix() -> Matrix {
        // A = M·Mᵀ + I is symmetric positive definite.
        Matrix::from_rows(3, 3, vec![4.0, 2.0, 0.6, 2.0, 5.0, 1.0, 0.6, 1.0, 3.0])
    }

    #[test]
    fn cholesky_reconstructs_the_matrix() {
        let a = spd_matrix();
        let l = a.cholesky().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let mut sum = 0.0;
                for k in 0..3 {
                    sum += l.get(i, k) * l.get(j, k);
                }
                assert!((sum - a.get(i, j)).abs() < 1e-10, "mismatch at ({i},{j})");
            }
        }
        // L is lower-triangular.
        assert_eq!(l.get(0, 1), 0.0);
        assert_eq!(l.get(0, 2), 0.0);
        assert_eq!(l.get(1, 2), 0.0);
    }

    #[test]
    fn cholesky_solve_inverts_the_system() {
        let a = spd_matrix();
        let l = a.cholesky().unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = cholesky_solve(&l, &b).unwrap();
        let back = a.mul_vec(&x).unwrap();
        for (lhs, rhs) in back.iter().zip(&b) {
            assert!((lhs - rhs).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_rejects_non_spd_and_non_square() {
        let not_spd = Matrix::from_rows(2, 2, vec![1.0, 5.0, 5.0, 1.0]);
        assert_eq!(
            not_spd.cholesky().unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
        let not_square = Matrix::zeros(2, 3);
        assert_eq!(not_square.cholesky().unwrap_err(), LinalgError::NotSquare);
    }

    #[test]
    fn triangular_solves_match_manual_solution() {
        let l = Matrix::from_rows(2, 2, vec![2.0, 0.0, 1.0, 3.0]);
        let x = solve_lower(&l, &[4.0, 10.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - (10.0 - 2.0) / 3.0).abs() < 1e-12);
        let y = solve_lower_transpose(&l, &[4.0, 9.0]).unwrap();
        // L^T = [[2,1],[0,3]] so y[1] = 3, y[0] = (4 - 1*3)/2 = 0.5
        assert!((y[1] - 3.0).abs() < 1e-12);
        assert!((y[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identity_and_mul_vec() {
        let i = Matrix::identity(3);
        let v = vec![1.0, -2.0, 3.0];
        assert_eq!(i.mul_vec(&v).unwrap(), v);
        assert_eq!(
            i.mul_vec(&[1.0]).unwrap_err(),
            LinalgError::DimensionMismatch
        );
    }

    #[test]
    fn dimension_mismatch_errors_are_reported() {
        let l = Matrix::identity(2);
        assert!(solve_lower(&l, &[1.0]).is_err());
        assert!(solve_lower_transpose(&l, &[1.0, 2.0, 3.0]).is_err());
        assert!(LinalgError::NotSquare.to_string().contains("square"));
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn out_of_range_access_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m.get(2, 0);
    }
}
