//! Bootstrap-aggregated (bagging) ensembles of regression trees.
//!
//! This is the surrogate model the Lynceus paper uses: an ensemble of 10
//! random regression trees, each fitted on a bootstrap resample of the
//! training set. The prediction mean is the average of the member
//! predictions; the predictive standard deviation is the spread of the member
//! predictions, which is how SMAC-style systems (and the paper, per its
//! references [29, 50]) obtain an uncertainty estimate from tree ensembles.

use crate::model::{Prediction, Surrogate, TrainingSet};
use crate::tree::RegressionTree;
use lynceus_math::rng::SeededRng;
use serde::{Deserialize, Serialize};

/// A bagging ensemble of random regression trees.
///
/// # Example
///
/// ```
/// use lynceus_learners::{BaggingEnsemble, Surrogate, TrainingSet};
///
/// let mut data = TrainingSet::new(1);
/// for i in 0..30 {
///     data.push(vec![i as f64], (i as f64).sqrt());
/// }
/// let mut model = BaggingEnsemble::with_seed(10, 1);
/// model.fit(&data);
/// // Uncertainty exists away from dense training data.
/// let p = model.predict(&[29.0]);
/// assert!(p.std >= 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaggingEnsemble {
    n_estimators: usize,
    seed: u64,
    min_samples_leaf: usize,
    max_depth: usize,
    trees: Vec<RegressionTree>,
    fitted: bool,
}

impl Default for BaggingEnsemble {
    fn default() -> Self {
        Self::new(10)
    }
}

impl BaggingEnsemble {
    /// Creates an ensemble of `n_estimators` trees with seed 0.
    ///
    /// # Panics
    ///
    /// Panics if `n_estimators == 0`.
    #[must_use]
    pub fn new(n_estimators: usize) -> Self {
        Self::with_seed(n_estimators, 0)
    }

    /// Creates an ensemble with an explicit seed for the bootstrap resampling
    /// and the per-tree randomization.
    ///
    /// # Panics
    ///
    /// Panics if `n_estimators == 0`.
    #[must_use]
    pub fn with_seed(n_estimators: usize, seed: u64) -> Self {
        assert!(n_estimators > 0, "an ensemble needs at least one tree");
        Self {
            n_estimators,
            seed,
            min_samples_leaf: 1,
            max_depth: 32,
            trees: Vec::new(),
            fitted: false,
        }
    }

    /// Sets the minimum number of samples per leaf of every member tree.
    #[must_use]
    pub fn with_min_samples_leaf(mut self, min: usize) -> Self {
        self.min_samples_leaf = min.max(1);
        self
    }

    /// Sets the maximum depth of every member tree.
    #[must_use]
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth.max(1);
        self
    }

    /// Number of member trees.
    #[must_use]
    pub fn n_estimators(&self) -> usize {
        self.n_estimators
    }

    /// Per-member predictions at a point (useful for diagnostics and tests).
    #[must_use]
    pub fn member_predictions(&self, features: &[f64]) -> Vec<f64> {
        self.trees
            .iter()
            .map(|t| t.predict(features).mean)
            .collect()
    }
}

impl Surrogate for BaggingEnsemble {
    fn fit(&mut self, data: &TrainingSet) {
        self.trees.clear();
        self.fitted = false;
        if data.is_empty() {
            return;
        }
        let mut rng = SeededRng::new(self.seed);
        let n = data.len();
        // Randomize the features examined per split like Weka's RandomTree:
        // examine ceil(sqrt(dims)) + 1 features (all of them for tiny spaces).
        let feature_subsample = ((data.dims() as f64).sqrt().ceil() as usize + 1).min(data.dims());
        for i in 0..self.n_estimators {
            // Bootstrap resample with replacement.
            let mut resample = TrainingSet::new(data.dims());
            for _ in 0..n {
                let idx = rng.below(n);
                let (f, t) = data.observation(idx);
                resample.push(f.to_vec(), t);
            }
            let mut tree = RegressionTree::new()
                .with_max_depth(self.max_depth)
                .with_min_samples_leaf(self.min_samples_leaf)
                .with_feature_subsample(feature_subsample)
                .with_seed(self.seed.wrapping_add(i as u64 * 7919 + 1));
            tree.fit(&resample);
            self.trees.push(tree);
        }
        self.fitted = true;
    }

    fn predict(&self, features: &[f64]) -> Prediction {
        if !self.fitted || self.trees.is_empty() {
            return Prediction::certain(0.0);
        }
        let preds = self.member_predictions(features);
        let n = preds.len() as f64;
        let mean = preds.iter().sum::<f64>() / n;
        let var = preds.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / n;
        Prediction {
            mean,
            std: var.sqrt(),
        }
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn fresh_clone(&self) -> Box<dyn Surrogate> {
        let mut clone = self.clone();
        clone.trees.clear();
        clone.fitted = false;
        Box::new(clone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_quadratic(n: usize) -> TrainingSet {
        let mut data = TrainingSet::new(1);
        let mut rng = SeededRng::new(3);
        for i in 0..n {
            let x = i as f64 / n as f64 * 10.0;
            data.push(vec![x], x * x + rng.gaussian(0.0, 0.5));
        }
        data
    }

    #[test]
    fn ensemble_tracks_the_underlying_function() {
        let mut model = BaggingEnsemble::with_seed(10, 42);
        model.fit(&noisy_quadratic(60));
        for x in [1.0, 3.0, 7.0, 9.0] {
            let p = model.predict(&[x]);
            assert!(
                (p.mean - x * x).abs() < 8.0,
                "prediction at {x} was {} (expected ~{})",
                p.mean,
                x * x
            );
        }
    }

    #[test]
    fn predictions_have_nonnegative_std() {
        let mut model = BaggingEnsemble::with_seed(8, 1);
        model.fit(&noisy_quadratic(40));
        for x in [0.0, 2.5, 5.0, 12.0] {
            assert!(model.predict(&[x]).std >= 0.0);
        }
    }

    #[test]
    fn deterministic_given_the_seed() {
        let data = noisy_quadratic(30);
        let mut a = BaggingEnsemble::with_seed(10, 7);
        let mut b = BaggingEnsemble::with_seed(10, 7);
        a.fit(&data);
        b.fit(&data);
        for x in [0.5, 4.5, 8.5] {
            assert_eq!(a.predict(&[x]), b.predict(&[x]));
        }
    }

    #[test]
    fn different_seeds_give_different_models() {
        let data = noisy_quadratic(30);
        let mut a = BaggingEnsemble::with_seed(10, 1);
        let mut b = BaggingEnsemble::with_seed(10, 2);
        a.fit(&data);
        b.fit(&data);
        let differs = [0.5, 2.5, 4.5, 6.5, 8.5]
            .iter()
            .any(|&x| a.predict(&[x]) != b.predict(&[x]));
        assert!(differs);
    }

    #[test]
    fn unfitted_ensemble_predicts_zero() {
        let model = BaggingEnsemble::new(5);
        assert!(!model.is_fitted());
        assert_eq!(model.predict(&[1.0]).mean, 0.0);
    }

    #[test]
    fn member_count_matches_configuration() {
        let mut model = BaggingEnsemble::with_seed(7, 0);
        model.fit(&noisy_quadratic(20));
        assert_eq!(model.n_estimators(), 7);
        assert_eq!(model.member_predictions(&[1.0]).len(), 7);
    }

    #[test]
    fn fitting_on_empty_data_leaves_the_model_unfitted() {
        let mut model = BaggingEnsemble::new(3);
        model.fit(&TrainingSet::new(2));
        assert!(!model.is_fitted());
    }

    #[test]
    fn fresh_clone_preserves_hyperparameters_but_not_the_fit() {
        let mut model = BaggingEnsemble::with_seed(6, 9).with_max_depth(5);
        model.fit(&noisy_quadratic(25));
        let clone = model.fresh_clone();
        assert!(!clone.is_fitted());
        assert!(model.is_fitted());
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_estimators_panics() {
        let _ = BaggingEnsemble::new(0);
    }
}
