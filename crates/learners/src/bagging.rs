//! Bootstrap-aggregated (bagging) ensembles of regression trees.
//!
//! This is the surrogate model the Lynceus paper uses: an ensemble of 10
//! random regression trees, each fitted on a bootstrap resample of the
//! training set. The prediction mean is the average of the member
//! predictions; the predictive standard deviation is the spread of the member
//! predictions, which is how SMAC-style systems (and the paper, per its
//! references [29, 50]) obtain an uncertainty estimate from tree ensembles.
//!
//! # Resampling scheme
//!
//! Member trees resample the training set with *Poisson(1) counts*: sample
//! `i` appears in tree `t`'s resample `k(t, i)` times, where `k(t, i)` is a
//! Poisson(1) draw derived from a counter-based hash of `(seed, t, i)`. For
//! large `n` this is the classical online-bagging approximation of the
//! `n`-draws-with-replacement bootstrap (Oza & Russell), and it has a
//! property the optimizer's speculation engine depends on: the count of a
//! sample does not depend on how many samples exist. Extending the training
//! set therefore leaves every existing count untouched, so
//! [`BaggingEnsemble::refit_with`] can extend a fitted ensemble by rebuilding
//! *only* the trees whose resample actually draws a new sample (in
//! expectation `1 - e^{-m}` of them for `m` new samples) while reusing the
//! rest — and the result is bit-identical to fitting from scratch on the
//! extended set.

use crate::model::{FeatureMatrix, Prediction, Surrogate, TrainingSet};
use crate::tree::RegressionTree;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Poisson(1) resample count of `sample` in tree `tree` of an ensemble
/// seeded with `seed`.
///
/// Counter-based (stateless): splitmix64-style mixing of the three inputs
/// into a uniform, then an inverse-CDF walk. Depends only on
/// `(seed, tree, sample)`, never on the training-set size — the property
/// that makes incremental refits exact.
fn resample_count(seed: u64, tree: u64, sample: u64) -> usize {
    let mut z = seed
        ^ tree.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ sample.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let u = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let mut k = 0usize;
    let mut p = (-1.0_f64).exp();
    let mut cumulative = p;
    // The walk terminates quickly: P(k > 12) < 1e-9 for Poisson(1).
    while u > cumulative && k < 16 {
        k += 1;
        p /= k as f64;
        cumulative += p;
    }
    k
}

/// A bagging ensemble of random regression trees.
///
/// # Example
///
/// ```
/// use lynceus_learners::{BaggingEnsemble, Surrogate, TrainingSet};
///
/// let mut data = TrainingSet::new(1);
/// for i in 0..30 {
///     data.push(vec![i as f64], (i as f64).sqrt());
/// }
/// let mut model = BaggingEnsemble::with_seed(10, 1);
/// model.fit(&data);
/// // Uncertainty exists away from dense training data.
/// let p = model.predict(&[29.0]);
/// assert!(p.std >= 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaggingEnsemble {
    n_estimators: usize,
    seed: u64,
    min_samples_leaf: usize,
    max_depth: usize,
    /// Member trees behind `Arc`, so an incremental refit shares the
    /// members whose resample is unchanged instead of deep-copying them.
    trees: Vec<Arc<RegressionTree>>,
    /// Each member's bootstrap resample (index multiset into `data`, in
    /// ascending order), aligned with `trees`. Stored so an incremental
    /// refit extends the multiset with the new samples' draws instead of
    /// re-hashing a Poisson count for every existing observation.
    resamples: Vec<Arc<Vec<usize>>>,
    /// The training set the ensemble was fitted on; retained so
    /// [`BaggingEnsemble::refit_with`] can extend it incrementally.
    data: Option<TrainingSet>,
    fitted: bool,
}

impl Default for BaggingEnsemble {
    fn default() -> Self {
        Self::new(10)
    }
}

impl BaggingEnsemble {
    /// Creates an ensemble of `n_estimators` trees with seed 0.
    ///
    /// # Panics
    ///
    /// Panics if `n_estimators == 0`.
    #[must_use]
    pub fn new(n_estimators: usize) -> Self {
        Self::with_seed(n_estimators, 0)
    }

    /// Creates an ensemble with an explicit seed for the bootstrap resampling
    /// and the per-tree randomization.
    ///
    /// # Panics
    ///
    /// Panics if `n_estimators == 0`.
    #[must_use]
    pub fn with_seed(n_estimators: usize, seed: u64) -> Self {
        assert!(n_estimators > 0, "an ensemble needs at least one tree");
        Self {
            n_estimators,
            seed,
            min_samples_leaf: 1,
            max_depth: 32,
            trees: Vec::new(),
            resamples: Vec::new(),
            data: None,
            fitted: false,
        }
    }

    /// Sets the minimum number of samples per leaf of every member tree.
    #[must_use]
    pub fn with_min_samples_leaf(mut self, min: usize) -> Self {
        self.min_samples_leaf = min.max(1);
        self
    }

    /// Sets the maximum depth of every member tree.
    #[must_use]
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth.max(1);
        self
    }

    /// Number of member trees.
    #[must_use]
    pub fn n_estimators(&self) -> usize {
        self.n_estimators
    }

    /// Number of training observations the ensemble was fitted on.
    #[must_use]
    pub fn training_len(&self) -> usize {
        self.data.as_ref().map_or(0, TrainingSet::len)
    }

    /// Per-member predictions at a point, one per member whose bootstrap
    /// resample was non-empty (useful for diagnostics and tests).
    #[must_use]
    pub fn member_predictions(&self, features: &[f64]) -> Vec<f64> {
        self.trees
            .iter()
            .filter(|t| t.is_fitted())
            .map(|t| t.predict_value(features))
            .collect()
    }

    /// The Poisson resample multiset of member `index` over samples
    /// `range` (ascending).
    fn resample_indices(&self, index: usize, range: std::ops::Range<usize>) -> Vec<usize> {
        let mut out = Vec::new();
        for i in range {
            let count = resample_count(self.seed, index as u64, i as u64);
            for _ in 0..count {
                out.push(i);
            }
        }
        out
    }

    /// Builds the member tree `index` on a resample multiset of `data`.
    fn make_tree(&self, data: &TrainingSet, index: usize, resample: &[usize]) -> RegressionTree {
        let mut tree = RegressionTree::new()
            .with_max_depth(self.max_depth)
            .with_min_samples_leaf(self.min_samples_leaf)
            .with_feature_subsample(feature_subsample(data.dims()))
            .with_seed(self.seed.wrapping_add(index as u64 * 7919 + 1));
        tree.fit_indexed(data, resample);
        tree
    }

    /// Returns a new ensemble fitted on this ensemble's training set extended
    /// with `extra` observations, reusing every member tree whose bootstrap
    /// resample does not draw any of the new samples.
    ///
    /// Because the resample counts are counter-based (see the module docs),
    /// the result is **bit-identical** to calling [`Surrogate::fit`] from
    /// scratch on the extended training set — only cheaper: in expectation a
    /// fraction `e^{-m}` of the trees (`m = extra.len()`) is reused
    /// unchanged, and the surviving trees skip the resample-and-rebuild
    /// entirely. This is the workhorse of the optimizer's speculation engine,
    /// which extends the model by one speculated observation per simulated
    /// branch.
    ///
    /// Calling this on an unfitted ensemble is equivalent to fitting on
    /// `extra` alone.
    ///
    /// # Panics
    ///
    /// Panics if `extra` is empty or a feature vector has the wrong length.
    #[must_use]
    pub fn refit_with(&self, extra: &[(&[f64], f64)]) -> Self {
        assert!(
            !extra.is_empty(),
            "refit_with needs at least one new observation"
        );
        let mut extended = match &self.data {
            Some(data) => data.clone(),
            None => TrainingSet::new(extra[0].0.len()),
        };
        let base_len = extended.len();
        for (features, target) in extra {
            extended.push(features.to_vec(), *target);
        }

        let mut next = Self {
            n_estimators: self.n_estimators,
            seed: self.seed,
            min_samples_leaf: self.min_samples_leaf,
            max_depth: self.max_depth,
            trees: Vec::with_capacity(self.n_estimators),
            resamples: Vec::with_capacity(self.n_estimators),
            data: None,
            fitted: false,
        };
        for t in 0..self.n_estimators {
            // Extend the stored multiset (ascending base indices) with the
            // new draws (ascending, all >= base_len): the result is exactly
            // the multiset a full Poisson scan would produce. The extension
            // is built lazily so the common no-draw case allocates nothing.
            let mut resample: Option<Vec<usize>> = None;
            for i in base_len..extended.len() {
                let count = resample_count(self.seed, t as u64, i as u64);
                if count > 0 {
                    let draws = resample.get_or_insert_with(|| {
                        if self.fitted {
                            (*self.resamples[t]).clone()
                        } else {
                            Vec::new()
                        }
                    });
                    for _ in 0..count {
                        draws.push(i);
                    }
                }
            }
            match resample {
                None if self.fitted => {
                    // The resample multiset is unchanged: the existing tree
                    // *is* the tree a from-scratch fit would build. Sharing
                    // the `Arc` makes the reuse a reference-count bump.
                    next.trees.push(Arc::clone(&self.trees[t]));
                    next.resamples.push(Arc::clone(&self.resamples[t]));
                }
                resample => {
                    let resample = resample.unwrap_or_default();
                    next.trees
                        .push(Arc::new(next.make_tree(&extended, t, &resample)));
                    next.resamples.push(Arc::new(resample));
                }
            }
        }
        next.data = Some(extended);
        next.fitted = true;
        next
    }

    /// The exact warm-start path for recurring jobs: an ensemble seeded
    /// with `seed` and pre-fitted on `rows` (a prior run's training set, in
    /// recording order) through [`BaggingEnsemble::refit_with`].
    ///
    /// Because the bootstrap resample counts are counter-based, later
    /// `refit_with` extensions of the returned ensemble are bit-identical
    /// to a from-scratch [`Surrogate::fit`] on the union of `rows` and the
    /// extensions — which is what lets run N+1 of a recurring job extend
    /// run N's surrogate instead of relearning it, with zero drift. The
    /// one requirement is a stable `seed` across the runs of one job (the
    /// job's knowledge record carries it).
    ///
    /// With empty `rows` this is just [`BaggingEnsemble::with_seed`].
    ///
    /// # Panics
    ///
    /// Panics if `n_estimators == 0` or a feature vector has the wrong
    /// length.
    #[must_use]
    pub fn warm_from(n_estimators: usize, seed: u64, rows: &[(&[f64], f64)]) -> Self {
        let base = Self::with_seed(n_estimators, seed);
        if rows.is_empty() {
            base
        } else {
            base.refit_with(rows)
        }
    }

    /// Mean of the training targets; the prediction fallback when every
    /// member resample came up empty (possible only for tiny training sets).
    fn target_mean_fallback(&self) -> f64 {
        self.data.as_ref().map_or(0.0, TrainingSet::target_mean)
    }

    /// Reference fit: materializes every member's bootstrap resample into a
    /// standalone [`TrainingSet`] (one copied row per draw) before building
    /// the tree — the implementation style of the original
    /// refit-from-scratch optimizer, preserved so the naive reference engine
    /// and the benchmarks measure the cost profile the speculation-engine
    /// overhaul removed.
    ///
    /// Bit-identical to [`Surrogate::fit`]: the materialized resample holds
    /// the same observation multiset in the same order, so tree construction
    /// performs the same arithmetic on it.
    pub fn fit_reference(&mut self, data: &TrainingSet) {
        self.trees.clear();
        self.resamples.clear();
        self.data = None;
        self.fitted = false;
        if data.is_empty() {
            return;
        }
        for t in 0..self.n_estimators {
            let indices = self.resample_indices(t, 0..data.len());
            // The original resample layout: one heap-allocated row per draw.
            let mut rows: Vec<Vec<f64>> = Vec::new();
            let mut targets: Vec<f64> = Vec::new();
            for &i in &indices {
                let (features, target) = data.observation(i);
                rows.push(features.to_vec());
                targets.push(target);
            }
            let mut tree = RegressionTree::new()
                .with_max_depth(self.max_depth)
                .with_min_samples_leaf(self.min_samples_leaf)
                .with_feature_subsample(feature_subsample(data.dims()))
                .with_seed(self.seed.wrapping_add(t as u64 * 7919 + 1));
            tree.fit_reference(&rows, &targets);
            self.trees.push(Arc::new(tree));
            self.resamples.push(Arc::new(indices));
        }
        self.data = Some(data.clone());
        self.fitted = true;
    }

    /// Batched prediction with a cross-call memo of per-tree row values.
    ///
    /// The speculation engine scores hundreds of speculative ensembles per
    /// decision **at the same fixed row set**, and those ensembles share
    /// most member trees (an incremental refit reuses every tree whose
    /// resample skips the new sample). The memo caches each distinct tree's
    /// leaf values over the row set — keyed by the tree's `Arc` address,
    /// with the `Arc` kept alive inside the cache so an address can never be
    /// recycled while its entry exists — so a shared tree is traversed once
    /// per decision instead of once per ensemble evaluation. A memoized
    /// traversal descends the whole row block through the tree
    /// ([`RegressionTree::predict_values_into`]), and the value vectors
    /// collected during the mean pass are replayed by the deviation pass,
    /// so each member costs one hash lookup per call, not two.
    ///
    /// The caller owns the cache and must use it only while `rows` is
    /// unchanged (the engine keeps one per worker per decision).
    /// Element-wise bit-identical to [`Surrogate::predict`].
    pub fn predict_rows_memo(
        &self,
        features: &FeatureMatrix,
        rows: &[usize],
        out: &mut Vec<Prediction>,
        memo: &mut RowValueMemo,
    ) {
        out.clear();
        if !self.fitted || self.trees.is_empty() {
            out.extend(rows.iter().map(|_| Prediction::certain(0.0)));
            return;
        }
        let RowValueMemo { map, passes } = memo;
        // Bound the memo so a pathological decision cannot hold thousands of
        // retired trees alive — but evict only *retired* entries (the memo's
        // `Arc` is the last one standing): live trees are shared with
        // ensembles still in play this decision, and dropping their cached
        // values would defeat the memo exactly when ensembles are largest.
        // Fall back to a full clear only if retiring frees nothing.
        if map.len() > MEMO_SOFT_CAPACITY {
            let before = map.len();
            // lint: allow(hash-iteration) -- retain is order-independent here: survivors form a set keyed by tree address and no value is read during the sweep
            map.retain(|_, (tree, _)| Arc::strong_count(tree) > 1);
            if map.len() == before {
                map.clear();
            }
        }
        passes.clear();
        let mut members = 0usize;
        out.resize(
            rows.len(),
            Prediction {
                mean: 0.0,
                std: 0.0,
            },
        );
        for tree in self.trees.iter().filter(|t| t.is_fitted()) {
            members += 1;
            let key = Arc::as_ptr(tree) as usize;
            let entry = map.entry(key).or_insert_with(|| {
                let mut values = vec![0.0; rows.len()];
                tree.predict_values_into(features, rows, &mut values);
                (Arc::clone(tree), Arc::new(values))
            });
            let values = Arc::clone(&entry.1);
            for (slot, &value) in out.iter_mut().zip(values.iter()) {
                slot.mean += value;
            }
            passes.push(values);
        }
        if members == 0 {
            let fallback = Prediction::certain(self.target_mean_fallback());
            for slot in out.iter_mut() {
                *slot = fallback;
            }
            return;
        }
        let n = members as f64;
        for slot in out.iter_mut() {
            slot.mean /= n;
        }
        // Deviation pass over the value vectors collected above, in the
        // same member order — no second map resolution per tree.
        for values in passes.iter() {
            for (slot, &value) in out.iter_mut().zip(values.iter()) {
                let d = value - slot.mean;
                slot.std += d * d;
            }
        }
        passes.clear();
        for slot in out.iter_mut() {
            slot.std = (slot.std / n).sqrt();
        }
    }

    /// Batched prediction over the retained **pointer** tree walk — the
    /// pre-flattening traversal, preserved as the comparison baseline the
    /// `micro_components` bench measures the flat block traversal against
    /// (the `flat_traversal` cell of `BENCH_baseline.json`). Element-wise
    /// bit-identical to [`Surrogate::predict_rows`]; only the node layout
    /// walked (and therefore the time taken) differs.
    pub fn predict_rows_pointer(
        &self,
        features: &FeatureMatrix,
        rows: &[usize],
        out: &mut Vec<Prediction>,
    ) {
        out.clear();
        if !self.fitted || self.trees.is_empty() {
            out.extend(rows.iter().map(|_| Prediction::certain(0.0)));
            return;
        }
        out.resize(
            rows.len(),
            Prediction {
                mean: 0.0,
                std: 0.0,
            },
        );
        let mut members = 0usize;
        for tree in self.trees.iter().filter(|t| t.is_fitted()) {
            members += 1;
            for (slot, &row) in out.iter_mut().zip(rows) {
                slot.mean += tree.predict_value_pointer(features.row(row));
            }
        }
        if members == 0 {
            let fallback = Prediction::certain(self.target_mean_fallback());
            for slot in out.iter_mut() {
                *slot = fallback;
            }
            return;
        }
        let n = members as f64;
        for slot in out.iter_mut() {
            slot.mean /= n;
        }
        for tree in self.trees.iter().filter(|t| t.is_fitted()) {
            for (slot, &row) in out.iter_mut().zip(rows) {
                let d = tree.predict_value_pointer(features.row(row)) - slot.mean;
                slot.std += d * d;
            }
        }
        for slot in out.iter_mut() {
            slot.std = (slot.std / n).sqrt();
        }
    }

    /// Reference prediction: collects the member predictions into a fresh
    /// vector before aggregating — the per-call allocation profile of the
    /// original implementation, preserved for the naive reference engine and
    /// the benchmarks. Bit-identical to [`Surrogate::predict`].
    #[must_use]
    pub fn predict_reference(&self, features: &[f64]) -> Prediction {
        if !self.fitted || self.trees.is_empty() {
            return Prediction::certain(0.0);
        }
        let preds = self.member_predictions(features);
        if preds.is_empty() {
            return Prediction::certain(self.target_mean_fallback());
        }
        let n = preds.len() as f64;
        let mean = preds.iter().sum::<f64>() / n;
        let var = preds.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / n;
        Prediction {
            mean,
            std: var.sqrt(),
        }
    }
}

/// Number of features examined per split, like Weka's `RandomTree`:
/// `ceil(sqrt(dims)) + 1` (all of them for tiny spaces).
fn feature_subsample(dims: usize) -> usize {
    ((dims as f64).sqrt().ceil() as usize + 1).min(dims)
}

/// Row-chunk width of the block traversal in [`Surrogate::predict_rows`]:
/// large enough to amortize the per-chunk dispatch and feed the 4-wide
/// flat descent, small enough to live on the stack.
const ROW_BLOCK: usize = 64;

/// Entry bound above which [`BaggingEnsemble::predict_rows_memo`] evicts
/// retired trees (and, only if that frees nothing, clears outright).
const MEMO_SOFT_CAPACITY: usize = 8192;

/// Tree address → `(tree, leaf values over the memo's row set)`. The entry
/// keeps the tree's `Arc` alive both to pin the address key and to let the
/// overflow policy tell live trees (strong count > 1) from retired ones.
type MemoMap = std::collections::HashMap<
    usize,
    (Arc<RegressionTree>, Arc<Vec<f64>>),
    std::hash::BuildHasherDefault<PointerHasher>,
>;

/// Cross-ensemble memo of per-tree leaf values over a fixed row set, used by
/// [`BaggingEnsemble::predict_rows_memo`]. Entries keep their tree's `Arc`
/// alive, so the address key is stable for the memo's lifetime. Keys are
/// already well-distributed allocator addresses, so the map hashes them with
/// an identity hasher instead of SipHash.
#[derive(Default)]
pub struct RowValueMemo {
    map: MemoMap,
    /// Per-call scratch: the value vectors of the ensemble under
    /// evaluation, collected by the mean pass and replayed by the deviation
    /// pass so the second pass performs no hash lookups. Cleared at the end
    /// of every call (the `Arc`s are shared with `map`, so holding them
    /// here costs nothing but a count).
    passes: Vec<Arc<Vec<f64>>>,
}

/// Identity hasher for pointer-valued keys (with a multiplicative mix so the
/// low alignment bits do not collide every bucket).
#[derive(Default)]
pub struct PointerHasher(u64);

impl std::hash::Hasher for PointerHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_usize(&mut self, i: usize) {
        self.0 = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

impl RowValueMemo {
    /// Creates an empty memo.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every memoized tree (and the `Arc`s keeping them alive) while
    /// retaining the map's capacity. Callers that reuse one memo across
    /// decisions **must** clear it whenever the row set changes — the cached
    /// values are per-row, keyed only by tree identity.
    pub fn clear(&mut self) {
        self.map.clear();
        self.passes.clear();
    }

    /// Number of distinct trees memoized.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is memoized yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl Surrogate for BaggingEnsemble {
    fn fit(&mut self, data: &TrainingSet) {
        self.trees.clear();
        self.resamples.clear();
        self.data = None;
        self.fitted = false;
        if data.is_empty() {
            return;
        }
        for t in 0..self.n_estimators {
            let resample = self.resample_indices(t, 0..data.len());
            let tree = self.make_tree(data, t, &resample);
            self.trees.push(Arc::new(tree));
            self.resamples.push(Arc::new(resample));
        }
        self.data = Some(data.clone());
        self.fitted = true;
    }

    fn predict(&self, features: &[f64]) -> Prediction {
        if !self.fitted || self.trees.is_empty() {
            return Prediction::certain(0.0);
        }
        let mut sum = 0.0;
        let mut members = 0usize;
        for tree in self.trees.iter().filter(|t| t.is_fitted()) {
            sum += tree.predict_value(features);
            members += 1;
        }
        if members == 0 {
            return Prediction::certain(self.target_mean_fallback());
        }
        let n = members as f64;
        let mean = sum / n;
        let mut var = 0.0;
        for tree in self.trees.iter().filter(|t| t.is_fitted()) {
            let d = tree.predict_value(features) - mean;
            var += d * d;
        }
        var /= n;
        Prediction {
            mean,
            std: var.sqrt(),
        }
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn fresh_clone(&self) -> Box<dyn Surrogate> {
        let mut clone = self.clone();
        clone.trees.clear();
        clone.resamples.clear();
        clone.data = None;
        clone.fitted = false;
        Box::new(clone)
    }

    fn predict_batch(&self, features: &FeatureMatrix) -> Vec<Prediction> {
        let rows: Vec<usize> = (0..features.rows()).collect();
        let mut out = Vec::new();
        self.predict_rows(features, &rows, &mut out);
        out
    }

    fn predict_rows(&self, features: &FeatureMatrix, rows: &[usize], out: &mut Vec<Prediction>) {
        out.clear();
        if !self.fitted || self.trees.is_empty() {
            out.extend(rows.iter().map(|_| Prediction::certain(0.0)));
            return;
        }
        out.resize(
            rows.len(),
            Prediction {
                mean: 0.0,
                std: 0.0,
            },
        );
        // Tree-major, block-traversal pass 1: each chunk of rows descends
        // through the tree together (four in flight on the flat table) into
        // a fixed stack buffer, then accumulates in row order — per row the
        // additions still happen in member order, so the resulting mean is
        // bit-identical to the row-at-a-time `predict`, and the pass stays
        // allocation-free.
        let mut block = [0.0f64; ROW_BLOCK];
        let mut members = 0usize;
        for tree in self.trees.iter().filter(|t| t.is_fitted()) {
            members += 1;
            for (row_chunk, slot_chunk) in rows.chunks(ROW_BLOCK).zip(out.chunks_mut(ROW_BLOCK)) {
                let block = &mut block[..row_chunk.len()];
                tree.predict_values_into(features, row_chunk, block);
                for (slot, &value) in slot_chunk.iter_mut().zip(block.iter()) {
                    slot.mean += value;
                }
            }
        }
        if members == 0 {
            let fallback = Prediction::certain(self.target_mean_fallback());
            for slot in out.iter_mut() {
                *slot = fallback;
            }
            return;
        }
        let n = members as f64;
        for slot in out.iter_mut() {
            slot.mean /= n;
        }
        // Tree-major pass 2: accumulate the squared deviations in the same
        // member order, again matching `predict` bit for bit.
        for tree in self.trees.iter().filter(|t| t.is_fitted()) {
            for (row_chunk, slot_chunk) in rows.chunks(ROW_BLOCK).zip(out.chunks_mut(ROW_BLOCK)) {
                let block = &mut block[..row_chunk.len()];
                tree.predict_values_into(features, row_chunk, block);
                for (slot, &value) in slot_chunk.iter_mut().zip(block.iter()) {
                    let d = value - slot.mean;
                    slot.std += d * d;
                }
            }
        }
        for slot in out.iter_mut() {
            slot.std = (slot.std / n).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lynceus_math::rng::SeededRng;

    fn noisy_quadratic(n: usize) -> TrainingSet {
        let mut data = TrainingSet::new(1);
        let mut rng = SeededRng::new(3);
        for i in 0..n {
            let x = i as f64 / n as f64 * 10.0;
            data.push(vec![x], x * x + rng.gaussian(0.0, 0.5));
        }
        data
    }

    #[test]
    fn ensemble_tracks_the_underlying_function() {
        let mut model = BaggingEnsemble::with_seed(10, 42);
        model.fit(&noisy_quadratic(60));
        for x in [1.0, 3.0, 7.0, 9.0] {
            let p = model.predict(&[x]);
            assert!(
                (p.mean - x * x).abs() < 8.0,
                "prediction at {x} was {} (expected ~{})",
                p.mean,
                x * x
            );
        }
    }

    #[test]
    fn predictions_have_nonnegative_std() {
        let mut model = BaggingEnsemble::with_seed(8, 1);
        model.fit(&noisy_quadratic(40));
        for x in [0.0, 2.5, 5.0, 12.0] {
            assert!(model.predict(&[x]).std >= 0.0);
        }
    }

    #[test]
    fn deterministic_given_the_seed() {
        let data = noisy_quadratic(30);
        let mut a = BaggingEnsemble::with_seed(10, 7);
        let mut b = BaggingEnsemble::with_seed(10, 7);
        a.fit(&data);
        b.fit(&data);
        for x in [0.5, 4.5, 8.5] {
            assert_eq!(a.predict(&[x]), b.predict(&[x]));
        }
    }

    #[test]
    fn different_seeds_give_different_models() {
        let data = noisy_quadratic(30);
        let mut a = BaggingEnsemble::with_seed(10, 1);
        let mut b = BaggingEnsemble::with_seed(10, 2);
        a.fit(&data);
        b.fit(&data);
        let differs = [0.5, 2.5, 4.5, 6.5, 8.5]
            .iter()
            .any(|&x| a.predict(&[x]) != b.predict(&[x]));
        assert!(differs);
    }

    #[test]
    fn unfitted_ensemble_predicts_zero() {
        let model = BaggingEnsemble::new(5);
        assert!(!model.is_fitted());
        assert_eq!(model.predict(&[1.0]).mean, 0.0);
    }

    #[test]
    fn member_count_matches_configuration() {
        let mut model = BaggingEnsemble::with_seed(7, 0);
        model.fit(&noisy_quadratic(20));
        assert_eq!(model.n_estimators(), 7);
        // With 20 samples the probability of an empty resample is e^-20 per
        // tree: every member participates.
        assert_eq!(model.member_predictions(&[1.0]).len(), 7);
    }

    #[test]
    fn fitting_on_empty_data_leaves_the_model_unfitted() {
        let mut model = BaggingEnsemble::new(3);
        model.fit(&TrainingSet::new(2));
        assert!(!model.is_fitted());
    }

    #[test]
    fn fresh_clone_preserves_hyperparameters_but_not_the_fit() {
        let mut model = BaggingEnsemble::with_seed(6, 9).with_max_depth(5);
        model.fit(&noisy_quadratic(25));
        let clone = model.fresh_clone();
        assert!(!clone.is_fitted());
        assert!(model.is_fitted());
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_estimators_panics() {
        let _ = BaggingEnsemble::new(0);
    }

    #[test]
    fn resample_counts_are_deterministic_and_size_independent() {
        for t in 0..8u64 {
            for i in 0..64u64 {
                let a = resample_count(17, t, i);
                let b = resample_count(17, t, i);
                assert_eq!(a, b);
                assert!(a <= 16);
            }
        }
        // Roughly Poisson(1): the empirical mean over many draws is near 1.
        let total: usize = (0..4000u64).map(|i| resample_count(5, 0, i)).sum();
        let mean = total as f64 / 4000.0;
        assert!((mean - 1.0).abs() < 0.1, "empirical count mean {mean}");
    }

    #[test]
    fn refit_with_matches_fitting_from_scratch() {
        let data = noisy_quadratic(25);
        let mut base = BaggingEnsemble::with_seed(10, 21);
        base.fit(&data);

        // Extend incrementally…
        let extra_features = [vec![11.0], vec![12.5]];
        let extended = base
            .refit_with(&[(&extra_features[0][..], 121.0)])
            .refit_with(&[(&extra_features[1][..], 156.25)]);

        // …and from scratch.
        let mut full = data.clone();
        full.push(vec![11.0], 121.0);
        full.push(vec![12.5], 156.25);
        let mut scratch_fit = BaggingEnsemble::with_seed(10, 21);
        scratch_fit.fit(&full);

        for x in [0.5, 3.0, 7.5, 11.0, 12.5, 14.0] {
            assert_eq!(
                extended.predict(&[x]),
                scratch_fit.predict(&[x]),
                "incremental and from-scratch fits diverge at {x}"
            );
        }
        assert_eq!(extended.training_len(), 27);
    }

    #[test]
    fn refit_with_reuses_trees_that_skip_the_new_sample() {
        let data = noisy_quadratic(30);
        let mut base = BaggingEnsemble::with_seed(32, 3);
        base.fit(&data);
        let refit = base.refit_with(&[(&[15.0][..], 225.0)]);
        // With 32 trees, in expectation ~e^-1 ≈ 37% skip the new sample; the
        // chance of *none* skipping is astronomically small. Reuse means
        // sharing the very same allocation, not an equal copy.
        let reused = refit
            .trees
            .iter()
            .zip(&base.trees)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count();
        assert!(reused > 0, "no member tree was reused");
        assert!(reused < 32, "every member tree was reused");
    }

    #[test]
    fn warm_from_extension_chain_equals_scratch_fit_on_union() {
        // Run N's training set…
        let prior = noisy_quadratic(20);
        let prior_rows: Vec<(&[f64], f64)> =
            (0..prior.len()).map(|i| prior.observation(i)).collect();
        // …warm-starts run N+1, which then observes two more points.
        let warm = BaggingEnsemble::warm_from(9, 33, &prior_rows)
            .refit_with(&[(&[21.0][..], 441.0)])
            .refit_with(&[(&[22.5][..], 506.25)]);

        let mut union = prior.clone();
        union.push(vec![21.0], 441.0);
        union.push(vec![22.5], 506.25);
        let mut scratch_fit = BaggingEnsemble::with_seed(9, 33);
        scratch_fit.fit(&union);

        assert_eq!(warm.training_len(), 22);
        for x in [0.0, 4.5, 10.0, 19.0, 21.0, 22.5, 25.0] {
            let (w, s) = (warm.predict(&[x]), scratch_fit.predict(&[x]));
            assert_eq!(
                (w.mean.to_bits(), w.std.to_bits()),
                (s.mean.to_bits(), s.std.to_bits()),
                "warm chain and union fit diverge at {x}"
            );
        }

        // Empty prior degrades to a plain unfitted ensemble.
        assert!(!BaggingEnsemble::warm_from(9, 33, &[]).is_fitted());
    }

    #[test]
    fn refit_with_on_unfitted_ensemble_equals_plain_fit() {
        let mut data = TrainingSet::new(1);
        data.push(vec![1.0], 2.0);
        data.push(vec![3.0], 4.0);
        let unfitted = BaggingEnsemble::with_seed(6, 5);
        let refit = unfitted.refit_with(&[(&[1.0][..], 2.0), (&[3.0][..], 4.0)]);
        let mut plain = BaggingEnsemble::with_seed(6, 5);
        plain.fit(&data);
        for x in [0.0, 1.0, 2.0, 3.0, 4.0] {
            assert_eq!(refit.predict(&[x]), plain.predict(&[x]));
        }
    }

    #[test]
    fn batched_predictions_are_bit_identical_to_single_predictions() {
        let data = noisy_quadratic(40);
        let mut model = BaggingEnsemble::with_seed(10, 11);
        model.fit(&data);
        let matrix = FeatureMatrix::from_rows(1, (0..50).map(|i| [i as f64 * 0.3]));
        let batch = model.predict_batch(&matrix);
        assert_eq!(batch.len(), 50);
        for (i, p) in batch.iter().enumerate() {
            assert_eq!(*p, model.predict(matrix.row(i)), "row {i} diverges");
        }
        // Subset form, reusing a caller-owned buffer.
        let rows = [3usize, 17, 42];
        let mut out = Vec::new();
        model.predict_rows(&matrix, &rows, &mut out);
        assert_eq!(out.len(), 3);
        for (slot, &row) in out.iter().zip(&rows) {
            assert_eq!(*slot, model.predict(matrix.row(row)));
        }
        // Memoized single-traversal form.
        let mut memoized = Vec::new();
        let mut memo = RowValueMemo::new();
        model.predict_rows_memo(&matrix, &rows, &mut memoized, &mut memo);
        assert_eq!(memoized, out);
        // Memo hits on a repeat call produce the same values.
        model.predict_rows_memo(&matrix, &rows, &mut memoized, &mut memo);
        assert_eq!(memoized, out);
        // Clearing empties the memo (for reuse under a new row set) and the
        // next pass repopulates it with identical results.
        assert!(!memo.is_empty());
        memo.clear();
        assert!(memo.is_empty());
        model.predict_rows_memo(&matrix, &rows, &mut memoized, &mut memo);
        assert_eq!(memoized, out);
        assert_eq!(memo.len(), 10);
    }

    #[test]
    fn reference_fit_and_predict_are_bit_identical_to_the_optimized_paths() {
        let data = noisy_quadratic(35);
        let mut optimized = BaggingEnsemble::with_seed(10, 13);
        optimized.fit(&data);
        let mut reference = BaggingEnsemble::with_seed(10, 13);
        reference.fit_reference(&data);
        for x in [0.0, 1.5, 4.0, 9.5, 12.0] {
            assert_eq!(optimized.predict(&[x]), reference.predict(&[x]));
            assert_eq!(reference.predict_reference(&[x]), reference.predict(&[x]));
        }
        // Degenerate cases agree too.
        let unfitted = BaggingEnsemble::new(3);
        assert_eq!(unfitted.predict_reference(&[1.0]), unfitted.predict(&[1.0]));
    }

    fn tiny_set() -> TrainingSet {
        let mut data = TrainingSet::new(1);
        data.push(vec![0.0], 1.0);
        data.push(vec![1.0], 2.0);
        data.push(vec![2.0], 4.0);
        data
    }

    #[test]
    fn flat_pointer_and_memoized_batches_agree_bitwise() {
        let data = noisy_quadratic(45);
        let mut model = BaggingEnsemble::with_seed(12, 19);
        model.fit(&data);
        let matrix = FeatureMatrix::from_rows(1, (0..77).map(|i| [i as f64 * 0.21 - 3.0]));
        let rows: Vec<usize> = (0..matrix.rows()).collect();
        let (mut flat, mut pointer, mut memoized) = (Vec::new(), Vec::new(), Vec::new());
        model.predict_rows(&matrix, &rows, &mut flat);
        model.predict_rows_pointer(&matrix, &rows, &mut pointer);
        let mut memo = RowValueMemo::new();
        model.predict_rows_memo(&matrix, &rows, &mut memoized, &mut memo);
        assert_eq!(flat, pointer, "flat block traversal diverged from pointer");
        assert_eq!(flat, memoized, "memoized traversal diverged");
        for (slot, &row) in flat.iter().zip(&rows) {
            assert_eq!(*slot, model.predict(matrix.row(row)));
        }
        // Unfitted/degenerate paths agree too.
        let unfitted = BaggingEnsemble::new(3);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        unfitted.predict_rows(&matrix, &rows, &mut a);
        unfitted.predict_rows_pointer(&matrix, &rows, &mut b);
        assert_eq!(a, b);
    }

    /// Regression test for the memo overflow policy: crossing the soft
    /// capacity used to `clear()` the whole memo, evicting *live* shared
    /// trees mid-decision. Now only retired entries (whose memo `Arc` is
    /// the last owner) are evicted; the live ensembles' cached values
    /// survive.
    #[test]
    fn memo_overflow_evicts_retired_trees_but_keeps_live_ones() {
        let data = tiny_set();
        let matrix = FeatureMatrix::from_rows(1, [[0.5], [1.5]]);
        let rows = [0usize, 1];
        let mut out = Vec::new();
        let mut memo = RowValueMemo::new();

        let mut live_a = BaggingEnsemble::with_seed(64, 1);
        live_a.fit(&data);
        live_a.predict_rows_memo(&matrix, &rows, &mut out, &mut memo);
        let a_entries = memo.len();
        let mut live_b = BaggingEnsemble::with_seed(64, 2);
        live_b.fit(&data);
        live_b.predict_rows_memo(&matrix, &rows, &mut out, &mut memo);
        let b_entries = memo.len() - a_entries;

        // Churn: fit-and-drop ensembles until the memo exceeds the bound.
        // Every call during the loop starts at or below the bound, so the
        // eviction first fires on the probe call after the loop.
        let mut churn_seed = 1000u64;
        while memo.len() <= MEMO_SOFT_CAPACITY {
            let mut retired = BaggingEnsemble::with_seed(64, churn_seed);
            churn_seed += 1;
            retired.fit(&data);
            retired.predict_rows_memo(&matrix, &rows, &mut out, &mut memo);
            // `retired` drops here: its entries' memo `Arc`s become sole owners.
        }
        assert!(memo.len() > MEMO_SOFT_CAPACITY);

        let mut expected = Vec::new();
        live_a.predict_rows(&matrix, &rows, &mut expected);
        live_a.predict_rows_memo(&matrix, &rows, &mut out, &mut memo);
        assert_eq!(out, expected, "eviction corrupted a live ensemble's values");
        assert_eq!(
            memo.len(),
            a_entries + b_entries,
            "only the two live ensembles' trees may survive the eviction"
        );
        // B's cached values survived without B being re-memoized: its call
        // inserts nothing new.
        live_b.predict_rows_memo(&matrix, &rows, &mut out, &mut memo);
        assert_eq!(memo.len(), a_entries + b_entries);
    }

    /// The fallback half of the overflow policy: when every entry is live
    /// (nothing to retire), the memo falls back to the old full clear so it
    /// cannot grow without bound.
    #[test]
    fn memo_overflow_falls_back_to_full_clear_when_nothing_is_retired() {
        let data = tiny_set();
        let matrix = FeatureMatrix::from_rows(1, [[0.5], [1.5]]);
        let rows = [0usize, 1];
        let mut out = Vec::new();
        let mut memo = RowValueMemo::new();

        let mut live = BaggingEnsemble::with_seed(64, 1);
        live.fit(&data);
        live.predict_rows_memo(&matrix, &rows, &mut out, &mut memo);
        let live_entries = memo.len();

        let mut held = Vec::new();
        let mut seed = 2000u64;
        while memo.len() <= MEMO_SOFT_CAPACITY {
            let mut other = BaggingEnsemble::with_seed(64, seed);
            seed += 1;
            other.fit(&data);
            other.predict_rows_memo(&matrix, &rows, &mut out, &mut memo);
            held.push(other); // kept alive: every entry stays live
        }
        assert!(memo.len() > MEMO_SOFT_CAPACITY);

        let mut expected = Vec::new();
        live.predict_rows(&matrix, &rows, &mut expected);
        live.predict_rows_memo(&matrix, &rows, &mut out, &mut memo);
        assert_eq!(out, expected);
        assert_eq!(
            memo.len(),
            live_entries,
            "a full clear (then one re-memoized ensemble) was expected"
        );
        drop(held);
    }

    #[test]
    fn batched_predictions_on_unfitted_model_are_zero() {
        let model = BaggingEnsemble::new(4);
        let matrix = FeatureMatrix::from_rows(1, [[1.0], [2.0]]);
        let batch = model.predict_batch(&matrix);
        assert!(batch.iter().all(|p| *p == Prediction::certain(0.0)));
    }
}
