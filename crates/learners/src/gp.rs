//! Gaussian-process regression.
//!
//! The paper's footnote 1 notes that Lynceus can operate with Gaussian
//! Processes instead of the bagging ensemble (CherryPick itself uses a GP).
//! This module provides exact GP regression with RBF or Matérn-5/2 kernels,
//! input normalization to the unit hypercube and target standardization, so
//! the ablation benchmarks can swap surrogates.

use crate::linalg::{cholesky_solve, solve_lower, Matrix};
use crate::model::{Prediction, Surrogate, TrainingSet};
use serde::{Deserialize, Serialize};

/// Covariance kernels supported by [`GaussianProcess`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// Squared-exponential (RBF) kernel `exp(-r²/2ℓ²)`.
    Rbf {
        /// Length-scale `ℓ` in normalized input units.
        length_scale: f64,
    },
    /// Matérn-5/2 kernel, the usual choice for performance modelling
    /// (CherryPick uses it).
    Matern52 {
        /// Length-scale `ℓ` in normalized input units.
        length_scale: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel at (scaled) distance `r >= 0`.
    #[must_use]
    pub fn eval(&self, r: f64) -> f64 {
        match self {
            Kernel::Rbf { length_scale } => {
                let s = r / length_scale;
                (-0.5 * s * s).exp()
            }
            Kernel::Matern52 { length_scale } => {
                let s = (5.0_f64).sqrt() * r / length_scale;
                (1.0 + s + s * s / 3.0) * (-s).exp()
            }
        }
    }
}

/// Exact Gaussian-process regression with a constant (zero, after
/// standardization) mean function.
///
/// # Example
///
/// ```
/// use lynceus_learners::{GaussianProcess, Kernel, Surrogate, TrainingSet};
///
/// let mut data = TrainingSet::new(1);
/// for i in 0..12 {
///     let x = i as f64;
///     data.push(vec![x], (x / 3.0).sin());
/// }
/// let mut gp = GaussianProcess::new(Kernel::Matern52 { length_scale: 0.3 }, 1e-6);
/// gp.fit(&data);
/// let p = gp.predict(&[5.0]);
/// assert!((p.mean - (5.0f64 / 3.0).sin()).abs() < 0.2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianProcess {
    kernel: Kernel,
    noise: f64,
    // Fitted state.
    train_inputs: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Option<Matrix>,
    // Normalization state.
    input_min: Vec<f64>,
    input_range: Vec<f64>,
    target_mean: f64,
    target_std: f64,
    fitted: bool,
}

impl GaussianProcess {
    /// Creates a GP with the given kernel and observation-noise variance.
    ///
    /// # Panics
    ///
    /// Panics if `noise` is negative or not finite.
    #[must_use]
    pub fn new(kernel: Kernel, noise: f64) -> Self {
        assert!(noise >= 0.0 && noise.is_finite(), "noise must be >= 0");
        Self {
            kernel,
            noise,
            train_inputs: Vec::new(),
            alpha: Vec::new(),
            chol: None,
            input_min: Vec::new(),
            input_range: Vec::new(),
            target_mean: 0.0,
            target_std: 1.0,
            fitted: false,
        }
    }

    /// A GP with the defaults used by the ablation benchmarks: Matérn-5/2
    /// kernel with length-scale 0.3 (normalized inputs) and a small noise
    /// term.
    #[must_use]
    pub fn default_matern() -> Self {
        Self::new(Kernel::Matern52 { length_scale: 0.3 }, 1e-4)
    }

    fn normalize(&self, features: &[f64]) -> Vec<f64> {
        features
            .iter()
            .enumerate()
            .map(|(d, &x)| {
                let min = self.input_min.get(d).copied().unwrap_or(0.0);
                let range = self.input_range.get(d).copied().unwrap_or(1.0);
                (x - min) / range
            })
            .collect()
    }

    fn distance(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}

impl Surrogate for GaussianProcess {
    fn fit(&mut self, data: &TrainingSet) {
        self.fitted = false;
        self.train_inputs.clear();
        self.alpha.clear();
        self.chol = None;
        if data.is_empty() {
            return;
        }
        let n = data.len();
        let dims = data.dims();

        // Input normalization to [0, 1] per dimension.
        self.input_min = vec![f64::INFINITY; dims];
        let mut input_max = vec![f64::NEG_INFINITY; dims];
        for row in data.feature_rows() {
            for d in 0..dims {
                self.input_min[d] = self.input_min[d].min(row[d]);
                input_max[d] = input_max[d].max(row[d]);
            }
        }
        self.input_range = self
            .input_min
            .iter()
            .zip(&input_max)
            .map(|(lo, hi)| {
                let r = hi - lo;
                if r.abs() < 1e-12 {
                    1.0
                } else {
                    r
                }
            })
            .collect();

        // Target standardization.
        self.target_mean = data.target_mean();
        let var = data
            .targets()
            .iter()
            .map(|t| (t - self.target_mean) * (t - self.target_mean))
            .sum::<f64>()
            / n as f64;
        self.target_std = if var.sqrt() < 1e-12 { 1.0 } else { var.sqrt() };

        self.train_inputs = data.feature_rows().map(|f| self.normalize(f)).collect();
        let y: Vec<f64> = data
            .targets()
            .iter()
            .map(|t| (t - self.target_mean) / self.target_std)
            .collect();

        // Covariance matrix with noise/jitter on the diagonal. If the
        // factorization fails (duplicated points with tiny noise), increase
        // the jitter until it succeeds.
        let mut jitter = self.noise.max(1e-10);
        let chol = loop {
            let mut k = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..=i {
                    let v = self
                        .kernel
                        .eval(Self::distance(&self.train_inputs[i], &self.train_inputs[j]));
                    k.set(i, j, v);
                    k.set(j, i, v);
                }
                k.set(i, i, k.get(i, i) + jitter);
            }
            match k.cholesky() {
                Ok(l) => break l,
                Err(_) => {
                    jitter *= 10.0;
                    assert!(
                        jitter < 1e3,
                        "covariance matrix could not be factorized even with large jitter"
                    );
                }
            }
        };
        self.alpha = cholesky_solve(&chol, &y).expect("factor and targets have matching sizes");
        self.chol = Some(chol);
        self.fitted = true;
    }

    fn predict(&self, features: &[f64]) -> Prediction {
        let Some(chol) = &self.chol else {
            return Prediction::certain(0.0);
        };
        let x = self.normalize(features);
        let k_star: Vec<f64> = self
            .train_inputs
            .iter()
            .map(|xi| self.kernel.eval(Self::distance(&x, xi)))
            .collect();
        let mean_std = k_star
            .iter()
            .zip(&self.alpha)
            .map(|(k, a)| k * a)
            .sum::<f64>();
        let v = solve_lower(chol, &k_star).expect("factor and k* have matching sizes");
        let prior = self.kernel.eval(0.0);
        let var = (prior - v.iter().map(|x| x * x).sum::<f64>()).max(0.0);
        Prediction {
            mean: mean_std * self.target_std + self.target_mean,
            std: var.sqrt() * self.target_std,
        }
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn fresh_clone(&self) -> Box<dyn Surrogate> {
        Box::new(Self::new(self.kernel, self.noise))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_data(n: usize) -> TrainingSet {
        let mut data = TrainingSet::new(1);
        for i in 0..n {
            let x = i as f64 / n as f64 * 10.0;
            data.push(vec![x], (x).sin() * 5.0 + 20.0);
        }
        data
    }

    #[test]
    fn gp_interpolates_training_points() {
        let mut gp = GaussianProcess::new(Kernel::Rbf { length_scale: 0.2 }, 1e-8);
        let data = sine_data(15);
        gp.fit(&data);
        for i in 0..data.len() {
            let (f, t) = data.observation(i);
            let p = gp.predict(f);
            assert!(
                (p.mean - t).abs() < 0.05,
                "prediction at training point {i}: {} vs {t}",
                p.mean
            );
            assert!(p.std < 0.5);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let mut gp = GaussianProcess::default_matern();
        gp.fit(&sine_data(10));
        let near = gp.predict(&[5.0]).std;
        let far = gp.predict(&[40.0]).std;
        assert!(far > near, "far std {far} should exceed near std {near}");
    }

    #[test]
    fn matern_and_rbf_kernels_decay_with_distance() {
        for kernel in [
            Kernel::Rbf { length_scale: 1.0 },
            Kernel::Matern52 { length_scale: 1.0 },
        ] {
            assert!((kernel.eval(0.0) - 1.0).abs() < 1e-12);
            assert!(kernel.eval(0.5) > kernel.eval(1.0));
            assert!(kernel.eval(1.0) > kernel.eval(3.0));
            assert!(kernel.eval(3.0) > 0.0);
        }
    }

    #[test]
    fn duplicate_points_do_not_break_the_fit() {
        let mut data = TrainingSet::new(2);
        for _ in 0..4 {
            data.push(vec![1.0, 2.0], 10.0);
        }
        data.push(vec![3.0, 4.0], 20.0);
        let mut gp = GaussianProcess::new(Kernel::Rbf { length_scale: 0.5 }, 0.0);
        gp.fit(&data);
        assert!(gp.is_fitted());
        let p = gp.predict(&[1.0, 2.0]);
        assert!((p.mean - 10.0).abs() < 1.0);
    }

    #[test]
    fn constant_targets_predict_the_constant() {
        let mut data = TrainingSet::new(1);
        for i in 0..6 {
            data.push(vec![i as f64], 3.5);
        }
        let mut gp = GaussianProcess::default_matern();
        gp.fit(&data);
        assert!((gp.predict(&[2.5]).mean - 3.5).abs() < 0.1);
    }

    #[test]
    fn unfitted_gp_predicts_zero() {
        let gp = GaussianProcess::default_matern();
        assert!(!gp.is_fitted());
        assert_eq!(gp.predict(&[1.0]).mean, 0.0);
    }

    #[test]
    fn fresh_clone_is_unfitted() {
        let mut gp = GaussianProcess::default_matern();
        gp.fit(&sine_data(8));
        assert!(!gp.fresh_clone().is_fitted());
    }

    #[test]
    #[should_panic(expected = "noise must be >= 0")]
    fn negative_noise_panics() {
        let _ = GaussianProcess::new(Kernel::Rbf { length_scale: 1.0 }, -1.0);
    }
}
