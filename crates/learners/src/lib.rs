//! Surrogate models for the Lynceus reproduction.
//!
//! Lynceus and the CherryPick-style baseline both rely on a regression model
//! that maps a configuration's feature vector to a *distribution* over the
//! cost of running the job on it: the acquisition function needs a mean `µ(x)`
//! and an uncertainty `σ(x)` for every untested configuration.
//!
//! The paper's implementation uses a **bagging ensemble of 10 random
//! regression trees** (Weka); footnote 1 notes that Gaussian Processes are an
//! equally valid choice. This crate provides both, behind the [`Surrogate`]
//! trait:
//!
//! * [`RegressionTree`] — a CART-style regression tree with optional random
//!   feature sub-sampling at each split;
//! * [`BaggingEnsemble`] — bootstrap aggregation of randomized trees, the
//!   paper's default surrogate;
//! * [`GaussianProcess`] — exact GP regression with RBF or Matérn-5/2 kernels
//!   over a small dense Cholesky solver ([`linalg`]).
//!
//! # Example
//!
//! ```
//! use lynceus_learners::{BaggingEnsemble, Surrogate, TrainingSet};
//!
//! let mut data = TrainingSet::new(1);
//! for i in 0..20 {
//!     let x = i as f64;
//!     data.push(vec![x], 3.0 * x + 1.0);
//! }
//! let mut model = BaggingEnsemble::with_seed(10, 7);
//! model.fit(&data);
//! let p = model.predict(&[10.0]);
//! assert!((p.mean - 31.0).abs() < 8.0);
//! assert!(p.std >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bagging;
pub mod gp;
pub mod linalg;
pub mod model;
pub mod tree;

pub use bagging::{BaggingEnsemble, RowValueMemo};
pub use gp::{GaussianProcess, Kernel};
pub use model::{FeatureMatrix, Prediction, Surrogate, TrainingSet};
pub use tree::RegressionTree;
