//! Property-based tests for the surrogate models.

use lynceus_learners::{BaggingEnsemble, GaussianProcess, RegressionTree, Surrogate, TrainingSet};
use proptest::prelude::*;

/// Strategy producing a small one-dimensional regression problem.
fn arb_dataset() -> impl Strategy<Value = TrainingSet> {
    proptest::collection::vec((-50.0f64..50.0, -100.0f64..100.0), 2..40).prop_map(|pairs| {
        let mut data = TrainingSet::new(1);
        for (x, y) in pairs {
            data.push(vec![x], y);
        }
        data
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_predictions_stay_within_target_range(data in arb_dataset(), x in -60.0f64..60.0) {
        let mut tree = RegressionTree::new();
        tree.fit(&data);
        let p = tree.predict(&[x]);
        let min = data.target_min().unwrap();
        let max = data.target_max().unwrap();
        prop_assert!(p.mean >= min - 1e-9 && p.mean <= max + 1e-9);
        prop_assert_eq!(p.std, 0.0);
    }

    #[test]
    fn ensemble_predictions_stay_within_target_range(data in arb_dataset(), x in -60.0f64..60.0) {
        let mut model = BaggingEnsemble::with_seed(8, 11);
        model.fit(&data);
        let p = model.predict(&[x]);
        let min = data.target_min().unwrap();
        let max = data.target_max().unwrap();
        prop_assert!(p.mean >= min - 1e-9 && p.mean <= max + 1e-9);
        prop_assert!(p.std >= 0.0);
        prop_assert!(p.std <= (max - min).abs() + 1e-9);
    }

    #[test]
    fn ensemble_is_deterministic(data in arb_dataset(), x in -60.0f64..60.0, seed in any::<u64>()) {
        let mut a = BaggingEnsemble::with_seed(5, seed);
        let mut b = BaggingEnsemble::with_seed(5, seed);
        a.fit(&data);
        b.fit(&data);
        prop_assert_eq!(a.predict(&[x]), b.predict(&[x]));
    }

    #[test]
    fn gp_predictions_are_finite(data in arb_dataset(), x in -60.0f64..60.0) {
        let mut gp = GaussianProcess::default_matern();
        gp.fit(&data);
        let p = gp.predict(&[x]);
        prop_assert!(p.mean.is_finite());
        prop_assert!(p.std.is_finite());
        prop_assert!(p.std >= 0.0);
    }

    #[test]
    fn surrogates_survive_refitting(data in arb_dataset()) {
        // The optimizer refits after every observation; make sure repeated
        // fits do not accumulate state.
        let mut model = BaggingEnsemble::with_seed(4, 3);
        model.fit(&data);
        let first = model.predict(&[0.0]);
        model.fit(&data);
        let second = model.predict(&[0.0]);
        prop_assert_eq!(first, second);
    }
}
