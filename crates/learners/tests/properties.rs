//! Property-based tests for the surrogate models.
//!
//! The environment has no registry access, so instead of `proptest` these
//! tests draw their cases from [`SeededRng`]: every property is checked over
//! a deterministic stream of randomized datasets.

use lynceus_learners::{
    BaggingEnsemble, FeatureMatrix, GaussianProcess, RegressionTree, Surrogate, TrainingSet,
};
use lynceus_math::rng::SeededRng;

/// A small random one-dimensional regression problem.
fn random_dataset(rng: &mut SeededRng) -> TrainingSet {
    let len = 2 + rng.below(38);
    let mut data = TrainingSet::new(1);
    for _ in 0..len {
        data.push(vec![rng.uniform(-50.0, 50.0)], rng.uniform(-100.0, 100.0));
    }
    data
}

const CASES: usize = 64;

#[test]
fn tree_predictions_stay_within_target_range() {
    let mut rng = SeededRng::new(0x21);
    for _ in 0..CASES {
        let data = random_dataset(&mut rng);
        let x = rng.uniform(-60.0, 60.0);
        let mut tree = RegressionTree::new();
        tree.fit(&data);
        let p = tree.predict(&[x]);
        let min = data.target_min().unwrap();
        let max = data.target_max().unwrap();
        assert!(p.mean >= min - 1e-9 && p.mean <= max + 1e-9);
        assert_eq!(p.std, 0.0);
    }
}

#[test]
fn ensemble_predictions_stay_within_target_range() {
    let mut rng = SeededRng::new(0x22);
    for _ in 0..CASES {
        let data = random_dataset(&mut rng);
        let x = rng.uniform(-60.0, 60.0);
        let mut model = BaggingEnsemble::with_seed(8, 11);
        model.fit(&data);
        let p = model.predict(&[x]);
        let min = data.target_min().unwrap();
        let max = data.target_max().unwrap();
        assert!(p.mean >= min - 1e-9 && p.mean <= max + 1e-9);
        assert!(p.std >= 0.0);
        assert!(p.std <= (max - min).abs() + 1e-9);
    }
}

#[test]
fn ensemble_is_deterministic() {
    let mut rng = SeededRng::new(0x23);
    for _ in 0..CASES {
        let data = random_dataset(&mut rng);
        let x = rng.uniform(-60.0, 60.0);
        let seed = rng.next_u64();
        let mut a = BaggingEnsemble::with_seed(5, seed);
        let mut b = BaggingEnsemble::with_seed(5, seed);
        a.fit(&data);
        b.fit(&data);
        assert_eq!(a.predict(&[x]), b.predict(&[x]));
    }
}

#[test]
fn gp_predictions_are_finite() {
    let mut rng = SeededRng::new(0x24);
    for _ in 0..CASES {
        let data = random_dataset(&mut rng);
        let x = rng.uniform(-60.0, 60.0);
        let mut gp = GaussianProcess::default_matern();
        gp.fit(&data);
        let p = gp.predict(&[x]);
        assert!(p.mean.is_finite());
        assert!(p.std.is_finite());
        assert!(p.std >= 0.0);
    }
}

#[test]
fn surrogates_survive_refitting() {
    let mut rng = SeededRng::new(0x25);
    for _ in 0..CASES {
        // The optimizer refits after every observation; make sure repeated
        // fits do not accumulate state.
        let data = random_dataset(&mut rng);
        let mut model = BaggingEnsemble::with_seed(4, 3);
        model.fit(&data);
        let first = model.predict(&[0.0]);
        model.fit(&data);
        let second = model.predict(&[0.0]);
        assert_eq!(first, second);
    }
}

#[test]
fn incremental_refits_match_from_scratch_fits_on_random_data() {
    let mut rng = SeededRng::new(0x26);
    for _ in 0..32 {
        let data = random_dataset(&mut rng);
        let seed = rng.next_u64();
        let extra_x = rng.uniform(-50.0, 50.0);
        let extra_y = rng.uniform(-100.0, 100.0);

        let mut base = BaggingEnsemble::with_seed(6, seed);
        base.fit(&data);
        let incremental = base.refit_with(&[(&[extra_x][..], extra_y)]);

        let mut full = data.clone();
        full.push(vec![extra_x], extra_y);
        let mut scratch = BaggingEnsemble::with_seed(6, seed);
        scratch.fit(&full);

        for _ in 0..8 {
            let x = rng.uniform(-60.0, 60.0);
            assert_eq!(incremental.predict(&[x]), scratch.predict(&[x]));
        }
    }
}

#[test]
fn batched_predictions_match_single_predictions_on_random_data() {
    let mut rng = SeededRng::new(0x27);
    for _ in 0..32 {
        let data = random_dataset(&mut rng);
        let mut model = BaggingEnsemble::with_seed(7, rng.next_u64());
        model.fit(&data);
        let matrix = FeatureMatrix::from_rows(1, (0..40).map(|_| [rng.uniform(-60.0, 60.0)]));
        for (i, p) in model.predict_batch(&matrix).iter().enumerate() {
            assert_eq!(*p, model.predict(matrix.row(i)));
        }
    }
}
