//! The TensorFlow datasets: CNN, RNN and Multilayer over 384 configurations.
//!
//! The configuration space is the Cartesian product of the hyper-parameter
//! grid of Table 1 (learning rate × batch size × training mode = 12
//! combinations) and the cloud grid of Table 2 (4 `t2` VM types × 8 cluster
//! scales = 32 cluster compositions, all spanning 8–112 total vCPUs), i.e.
//! 384 configurations over 5 dimensions. Jobs are forcefully terminated after
//! 10 minutes, and the runtime constraint `Tmax` is set to the median runtime
//! of the dataset so that roughly half of the configurations satisfy it.

use crate::lookup::{ConfigOutcome, LookupDataset};
use lynceus_cloud::{Catalog, ClusterSpec};
use lynceus_math::rng::SeededRng;
use lynceus_sim::{NetworkKind, NoiseModel, TensorflowModel, TfHyperParams, TrainingMode};
use lynceus_space::{ConfigSpace, SpaceBuilder};
use std::collections::BTreeMap;

/// The 10-minute timeout after which a training job is forcefully terminated.
pub const TIMEOUT_SECONDS: f64 = 600.0;

/// The learning rates of Table 1.
pub const LEARNING_RATES: [f64; 3] = [1e-3, 1e-4, 1e-5];

/// The batch sizes of Table 1.
pub const BATCH_SIZES: [f64; 2] = [16.0, 256.0];

/// The VM types of Table 2.
pub const VM_TYPES: [&str; 4] = ["t2.small", "t2.medium", "t2.xlarge", "t2.2xlarge"];

/// The total vCPU counts spanned by every VM type's cluster sizes in Table 2
/// (e.g. 8 × `t2.small` = 8 vCPUs, 14 × `t2.2xlarge` = 112 vCPUs).
pub const TOTAL_VCPUS: [f64; 8] = [8.0, 16.0, 32.0, 48.0, 64.0, 80.0, 96.0, 112.0];

/// Builds the 5-dimensional, 384-point configuration space shared by the
/// three TensorFlow jobs.
#[must_use]
pub fn space() -> ConfigSpace {
    SpaceBuilder::new()
        .numeric("learning_rate", LEARNING_RATES)
        .numeric("batch_size", BATCH_SIZES)
        .categorical("training_mode", ["sync", "async"])
        .categorical("vm_type", VM_TYPES)
        .numeric("total_vcpus", TOTAL_VCPUS)
        .build()
}

/// The dimension indices describing the cloud part of a configuration
/// (`vm_type`, `total_vcpus`), used by the disjoint-optimization analysis.
pub const CLOUD_DIMS: [usize; 2] = [3, 4];

/// The dimension indices describing the hyper-parameters
/// (`learning_rate`, `batch_size`, `training_mode`).
pub const PARAM_DIMS: [usize; 3] = [0, 1, 2];

/// Builds one TensorFlow dataset (one network kind).
///
/// The `seed` drives the per-configuration measurement noise; the paper's
/// datasets were measured once per configuration, so the noise is frozen into
/// the table.
#[must_use]
pub fn dataset(kind: NetworkKind, seed: u64) -> LookupDataset {
    let space = space();
    let catalog = Catalog::aws();
    let model = TensorflowModel::new(kind);
    let noise = NoiseModel::default();
    let mut rng = SeededRng::new(seed ^ 0x7f4a_7c15);
    let mut outcomes = BTreeMap::new();

    for id in space.ids() {
        let config = space.config_of(id);
        let values = space.values(&config);
        let learning_rate = values[0].1.as_number().expect("numeric dimension");
        let batch_size = values[1].1.as_number().expect("numeric dimension") as u32;
        let mode = TrainingMode::from_label(values[2].1.as_label().expect("categorical"))
            .expect("valid training mode");
        let vm_name = values[3].1.as_label().expect("categorical").to_owned();
        let total_vcpus = values[4].1.as_number().expect("numeric dimension");

        let vm = catalog.get(&vm_name).expect("vm in catalog").clone();
        let workers = (total_vcpus / f64::from(vm.vcpus)).round() as u32;
        let cluster = ClusterSpec::new(vm, workers.max(1));
        let params = TfHyperParams {
            learning_rate,
            batch_size,
            training_mode: mode,
        };

        let noisy_runtime = model.runtime_seconds(&cluster, &params) * noise.factor(&mut rng);
        let billed_vms = f64::from(cluster.count()) + 1.0; // workers + parameter server
        let price_per_second = cluster.vm().price_per_second() * billed_vms;
        let execution = lynceus_sim::Execution::from_runtime(
            noisy_runtime,
            price_per_second,
            Some(TIMEOUT_SECONDS),
        );
        outcomes.insert(
            id,
            ConfigOutcome {
                runtime_seconds: execution.runtime_seconds,
                cost: execution.cost,
                timed_out: execution.timed_out,
                price_per_second,
            },
        );
    }

    let mut dataset = LookupDataset::new(
        format!("tensorflow/{}", kind.name().to_lowercase()),
        space,
        outcomes,
        TIMEOUT_SECONDS,
    );
    dataset.set_tmax_to_median_runtime();
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use lynceus_core::CostOracle;

    #[test]
    fn space_matches_tables_1_and_2() {
        let space = space();
        assert_eq!(space.dims(), 5);
        assert_eq!(space.len(), 384);
        // 12 hyper-parameter combinations × 32 cluster compositions.
        assert_eq!(space.cardinalities(), vec![3, 2, 2, 4, 8]);
    }

    #[test]
    fn datasets_cover_the_whole_space() {
        let d = dataset(NetworkKind::Multilayer, 1);
        assert_eq!(d.len(), 384);
        assert_eq!(d.candidates().len(), 384);
        assert!(d.name().contains("multilayer"));
    }

    #[test]
    fn tmax_keeps_a_substantial_fraction_of_the_space_feasible() {
        // The paper sets Tmax so that roughly half the configurations satisfy
        // it. For the RNN more than half of the simulated configurations hit
        // the 10-minute hard timeout, so its feasible fraction sits below one
        // half (documented in EXPERIMENTS.md); it must still be substantial.
        for kind in NetworkKind::all() {
            let d = dataset(kind, 1);
            let frac = d.feasible_fraction();
            assert!(
                (0.3..=0.7).contains(&frac),
                "{}: feasible fraction {frac}",
                d.name()
            );
        }
    }

    #[test]
    fn few_configurations_are_close_to_optimal() {
        // Figure 1a: only a small fraction of the configurations are within
        // 2x of the optimum, and the tail is at least an order of magnitude
        // worse.
        for kind in NetworkKind::all() {
            let d = dataset(kind, 1);
            let (_, best_cost) = d.optimum().unwrap();
            let feasible_within_2x = d
                .candidates()
                .iter()
                .filter(|&&id| d.is_feasible(id) && d.outcome(id).cost <= 2.0 * best_cost)
                .count();
            assert!(
                feasible_within_2x >= 1 && feasible_within_2x <= d.len() / 5,
                "{}: {} of {} feasible configurations within 2x",
                d.name(),
                feasible_within_2x,
                d.len()
            );
            let landscape = d.normalized_cost_landscape();
            let worst = landscape.last().copied().unwrap();
            assert!(worst >= 10.0, "{}: worst/best ratio only {worst}", d.name());
        }
    }

    #[test]
    fn some_configurations_time_out_and_some_do_not() {
        let d = dataset(NetworkKind::Rnn, 1);
        let timed_out = d
            .candidates()
            .iter()
            .filter(|&&id| d.outcome(id).timed_out)
            .count();
        assert!(timed_out > 0, "the RNN should have hopeless configurations");
        assert!(
            timed_out < d.len(),
            "not every configuration should time out"
        );
    }

    #[test]
    fn datasets_are_deterministic_per_seed() {
        let a = dataset(NetworkKind::Cnn, 7);
        let b = dataset(NetworkKind::Cnn, 7);
        assert_eq!(a, b);
        let c = dataset(NetworkKind::Cnn, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn costs_account_for_the_parameter_server_vm() {
        let d = dataset(NetworkKind::Multilayer, 1);
        let space = d.space();
        // Find a configuration on t2.small with 8 total vCPUs → 8 workers + 1 PS.
        let id = space
            .ids()
            .find(|&id| {
                let values = space.values(&space.config_of(id));
                values[3].1.as_label() == Some("t2.small") && values[4].1.as_number() == Some(8.0)
            })
            .unwrap();
        let catalog = Catalog::aws();
        let small = catalog.get("t2.small").unwrap();
        let expected_rate = small.price_per_second() * 9.0;
        assert!((d.price_rate(id) - expected_rate).abs() < 1e-12);
    }
}
