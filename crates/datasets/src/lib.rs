//! Deterministic lookup datasets mirroring the paper's evaluation datasets.
//!
//! The paper evaluates the optimizers by *simulation over measured lookup
//! tables*: each job was profiled once on every configuration of its search
//! space, and the optimizers replay those measurements (Section 5.2). This
//! crate regenerates equivalent lookup tables from the analytic simulators of
//! `lynceus-sim` (see `DESIGN.md` for the substitution rationale):
//!
//! * [`tensorflow`] — the 3 TensorFlow jobs (CNN, RNN, Multilayer), 384
//!   configurations over 5 dimensions (Tables 1 and 2);
//! * [`scout`] — 18 Hadoop/Spark jobs over the `{C4,R4,M4}` ×
//!   `{large,xlarge,2xlarge}` × cluster-size grid;
//! * [`cherrypick`] — the 5 CherryPick jobs over the `{C4,M4,R3,I2}` grid;
//! * [`lookup`] — the [`LookupDataset`] type itself, which implements
//!   [`lynceus_core::CostOracle`] so any optimizer can run against it
//!   directly;
//! * [`catalog`] — convenience constructors for "all TensorFlow datasets",
//!   "all Scout datasets", etc.
//!
//! Every dataset also fixes its runtime constraint `Tmax` so that roughly
//! half of its configurations satisfy it, following the paper's methodology.
//!
//! # Example
//!
//! ```
//! use lynceus_datasets::catalog;
//! use lynceus_core::CostOracle;
//!
//! let datasets = catalog::tensorflow_datasets();
//! assert_eq!(datasets.len(), 3);
//! let cnn = &datasets[0];
//! assert_eq!(cnn.candidates().len(), 384);
//! let (best, cost) = cnn.optimum().expect("some configuration is feasible");
//! assert!(cost > 0.0);
//! assert!(cnn.outcome(best).runtime_seconds <= cnn.tmax_seconds());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod cherrypick;
pub mod lookup;
pub mod scout;
pub mod tensorflow;

pub use lookup::{ConfigOutcome, LookupDataset};
