//! Convenience constructors for the full dataset collections used by the
//! evaluation harness.

use crate::cherrypick;
use crate::lookup::LookupDataset;
use crate::scout;
use crate::tensorflow;
use lynceus_sim::NetworkKind;

/// The default seed used to generate the published datasets. Fixing it makes
/// every figure in `EXPERIMENTS.md` reproducible bit-for-bit.
pub const DEFAULT_SEED: u64 = 20_190_506; // the arXiv submission date of the paper

/// The three TensorFlow datasets (CNN, RNN, Multilayer), in the order the
/// paper's figures list them.
#[must_use]
pub fn tensorflow_datasets() -> Vec<LookupDataset> {
    [NetworkKind::Cnn, NetworkKind::Rnn, NetworkKind::Multilayer]
        .into_iter()
        .map(|kind| tensorflow::dataset(kind, DEFAULT_SEED))
        .collect()
}

/// The 18 Scout datasets.
#[must_use]
pub fn scout_datasets() -> Vec<LookupDataset> {
    scout::all_datasets(DEFAULT_SEED)
}

/// The 5 CherryPick datasets.
#[must_use]
pub fn cherrypick_datasets() -> Vec<LookupDataset> {
    cherrypick::all_datasets(DEFAULT_SEED)
}

/// Every dataset of the evaluation (3 TensorFlow + 18 Scout + 5 CherryPick =
/// 26 heterogeneous jobs).
#[must_use]
pub fn all_datasets() -> Vec<LookupDataset> {
    let mut all = tensorflow_datasets();
    all.extend(scout_datasets());
    all.extend(cherrypick_datasets());
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_collection_counts_match_the_paper() {
        assert_eq!(tensorflow_datasets().len(), 3);
        assert_eq!(scout_datasets().len(), 18);
        assert_eq!(cherrypick_datasets().len(), 5);
        assert_eq!(all_datasets().len(), 26);
    }

    #[test]
    fn dataset_names_are_unique() {
        let names: std::collections::HashSet<_> =
            all_datasets().iter().map(|d| d.name().to_owned()).collect();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn every_dataset_has_a_feasible_optimum() {
        for d in all_datasets() {
            assert!(
                d.optimum().is_some(),
                "{} has no feasible optimum",
                d.name()
            );
            assert!(d.mean_cost() > 0.0);
        }
    }
}
