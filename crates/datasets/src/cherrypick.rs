//! The CherryPick datasets: TPC-H, TPC-DS, TeraSort, Spark KMeans and Spark
//! Regression over a 3-dimensional cloud grid.
//!
//! The CherryPick study profiles its 5 jobs on clusters built from the
//! `{C4, M4, R3, I2}` families in sizes `{large, xlarge, 2xlarge}` with
//! 32–112 machines. The configuration space differs per job (the paper
//! reports cardinalities between 47 and 72 points); this module reproduces
//! that by excluding, per job, the instance shapes the original study did not
//! measure.

use crate::lookup::{ConfigOutcome, LookupDataset};
use lynceus_cloud::{Catalog, ClusterSpec};
use lynceus_math::rng::SeededRng;
use lynceus_sim::{AnalyticsJobProfile, AnalyticsModel, NoiseModel};
use lynceus_space::{Config, ConfigSpace, SpaceBuilder};
use std::collections::BTreeMap;

/// The VM families of the CherryPick grid.
pub const FAMILIES: [&str; 4] = ["c4", "m4", "r3", "i2"];

/// The VM sizes of the CherryPick grid.
pub const SIZES: [&str; 3] = ["large", "xlarge", "2xlarge"];

/// The cluster sizes of the CherryPick grid.
pub const MACHINE_COUNTS: [f64; 6] = [32.0, 48.0, 64.0, 80.0, 96.0, 112.0];

/// Builds the CherryPick configuration grid (before per-job restriction).
#[must_use]
pub fn space() -> ConfigSpace {
    SpaceBuilder::new()
        .categorical("vm_family", FAMILIES)
        .categorical("vm_size", SIZES)
        .numeric("machines", MACHINE_COUNTS)
        .build()
}

/// One CherryPick job: its resource profile plus the `(family, size)` shapes
/// missing from its measured space.
#[derive(Debug, Clone)]
pub struct CherryPickJob {
    /// The job's resource profile.
    pub profile: AnalyticsJobProfile,
    /// `(family, size)` pairs excluded from this job's configuration space.
    pub excluded_shapes: Vec<(&'static str, &'static str)>,
}

/// The five CherryPick jobs.
#[must_use]
pub fn jobs() -> Vec<CherryPickJob> {
    let mut tpch = AnalyticsJobProfile::memory_bound("tpch", 3.0);
    tpch.compute_core_seconds = 250_000.0;
    tpch.input_gb = 300.0;
    tpch.shuffle_gb = 80.0;

    let mut tpcds = AnalyticsJobProfile::memory_bound("tpcds", 4.0);
    tpcds.compute_core_seconds = 350_000.0;
    tpcds.input_gb = 400.0;
    tpcds.shuffle_gb = 120.0;

    let mut terasort = AnalyticsJobProfile::shuffle_bound("terasort", 1_000.0);
    terasort.compute_core_seconds = 150_000.0;
    terasort.local_disk_affinity = 0.8;

    let mut kmeans = AnalyticsJobProfile::cpu_bound("spark-kmeans", 500_000.0);
    kmeans.input_gb = 200.0;

    let mut regression = AnalyticsJobProfile::cpu_bound("spark-regression", 400_000.0);
    regression.input_gb = 150.0;
    regression.memory_per_core_gb = 2.0;

    vec![
        CherryPickJob {
            profile: tpch,
            excluded_shapes: vec![],
        },
        CherryPickJob {
            profile: tpcds,
            excluded_shapes: vec![("i2", "large")],
        },
        CherryPickJob {
            profile: terasort,
            excluded_shapes: vec![("i2", "large"), ("r3", "large")],
        },
        CherryPickJob {
            profile: kmeans,
            excluded_shapes: vec![("i2", "large"), ("i2", "xlarge"), ("r3", "large")],
        },
        CherryPickJob {
            profile: regression,
            excluded_shapes: vec![
                ("i2", "large"),
                ("i2", "xlarge"),
                ("i2", "2xlarge"),
                ("c4", "large"),
            ],
        },
    ]
}

/// Whether a configuration belongs to a job's (restricted) space.
#[must_use]
pub fn is_valid(space: &ConfigSpace, config: &Config, job: &CherryPickJob) -> bool {
    let values = space.values(config);
    let family = values[0].1.as_label().expect("categorical");
    let size = values[1].1.as_label().expect("categorical");
    !job.excluded_shapes
        .iter()
        .any(|(f, s)| *f == family && *s == size)
}

/// Builds one CherryPick dataset.
#[must_use]
pub fn dataset(job: &CherryPickJob, seed: u64) -> LookupDataset {
    let space = space();
    let catalog = Catalog::aws();
    let model = AnalyticsModel::new(job.profile.clone());
    let noise = NoiseModel::default();
    let mut rng = SeededRng::new(seed ^ 0xc4e2_21b1);
    let mut outcomes = BTreeMap::new();

    for id in space.ids() {
        let config = space.config_of(id);
        if !is_valid(&space, &config, job) {
            continue;
        }
        let values = space.values(&config);
        let family = values[0].1.as_label().expect("categorical").to_owned();
        let size = values[1].1.as_label().expect("categorical").to_owned();
        let machines = values[2].1.as_number().expect("numeric") as u32;
        let vm = catalog
            .get(&format!("{family}.{size}"))
            .expect("vm in catalog")
            .clone();
        let cluster = ClusterSpec::new(vm, machines);
        let runtime = model.runtime_seconds(&cluster) * noise.factor(&mut rng);
        let price_per_second = cluster.price_per_second();
        outcomes.insert(
            id,
            ConfigOutcome {
                runtime_seconds: runtime,
                cost: runtime * price_per_second,
                timed_out: false,
                price_per_second,
            },
        );
    }

    let mut dataset = LookupDataset::new(
        format!("cherrypick/{}", job.profile.name),
        space,
        outcomes,
        1e12,
    );
    dataset.set_tmax_to_median_runtime();
    dataset
}

/// Builds all five CherryPick datasets.
#[must_use]
pub fn all_datasets(seed: u64) -> Vec<LookupDataset> {
    jobs()
        .iter()
        .enumerate()
        .map(|(i, job)| dataset(job, seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lynceus_core::CostOracle;

    #[test]
    fn grid_matches_the_paper_description() {
        let space = space();
        assert_eq!(space.dims(), 3);
        assert_eq!(space.len(), 72);
    }

    #[test]
    fn per_job_cardinalities_fall_in_the_reported_range() {
        for job in jobs() {
            let d = dataset(&job, 1);
            assert!(
                (47..=72).contains(&d.len()),
                "{} has {} configurations",
                d.name(),
                d.len()
            );
        }
        // The largest space is the full grid and the smallest is well below it.
        let sizes: Vec<usize> = jobs().iter().map(|j| dataset(j, 1).len()).collect();
        assert_eq!(*sizes.iter().max().unwrap(), 72);
        assert!(*sizes.iter().min().unwrap() < 55);
    }

    #[test]
    fn there_are_five_jobs_with_distinct_names() {
        let names: std::collections::HashSet<_> =
            jobs().iter().map(|j| j.profile.name.clone()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn tmax_keeps_roughly_half_of_the_space_feasible() {
        for job in jobs() {
            let d = dataset(&job, 1);
            let frac = d.feasible_fraction();
            assert!((0.3..=0.7).contains(&frac), "{}: {frac}", d.name());
        }
    }

    #[test]
    fn the_five_jobs_do_not_share_a_single_optimum() {
        let optima: std::collections::HashSet<_> = jobs()
            .iter()
            .map(|job| {
                let d = dataset(job, 1);
                let space = d.space();
                let (best, _) = d.optimum().unwrap();
                space
                    .values(&space.config_of(best))
                    .iter()
                    .map(|(_, v)| v.to_string())
                    .collect::<Vec<_>>()
                    .join("/")
            })
            .collect();
        assert!(optima.len() >= 2, "all jobs share the optimum {optima:?}");
    }

    #[test]
    fn datasets_are_deterministic_per_seed() {
        let job = &jobs()[0];
        assert_eq!(dataset(job, 9), dataset(job, 9));
        assert_ne!(dataset(job, 9), dataset(job, 10));
    }

    #[test]
    fn excluded_shapes_never_appear() {
        let job = &jobs()[4];
        let d = dataset(job, 1);
        let space = d.space();
        for id in d.candidates() {
            let values = space.values(&space.config_of(id));
            let family = values[0].1.as_label().unwrap().to_owned();
            assert_ne!(family, "i2");
        }
    }
}
