//! The Scout datasets: 18 Hadoop/Spark jobs over a 3-dimensional cloud grid.
//!
//! The Scout study profiles HiBench and spark-perf workloads on AWS clusters
//! built from the `{C4, R4, M4}` families in sizes `{large, xlarge, 2xlarge}`
//! with 4–48 machines, with the caveat that `xlarge` clusters stop at 24
//! machines and `2xlarge` clusters at 12 (Section 5.1.2). The resulting
//! irregular space has ~70 valid configurations (the paper counts 69; this
//! grid yields 72 — the difference is a handful of configurations missing
//! from the original measurements and is documented in `EXPERIMENTS.md`).

use crate::lookup::{ConfigOutcome, LookupDataset};
use lynceus_cloud::{Catalog, ClusterSpec};
use lynceus_math::rng::SeededRng;
use lynceus_sim::{AnalyticsJobProfile, AnalyticsModel, NoiseModel};
use lynceus_space::{Config, ConfigSpace, SpaceBuilder};
use std::collections::BTreeMap;

/// The VM families of the Scout grid.
pub const FAMILIES: [&str; 3] = ["c4", "m4", "r4"];

/// The VM sizes of the Scout grid.
pub const SIZES: [&str; 3] = ["large", "xlarge", "2xlarge"];

/// The cluster sizes of the Scout grid.
pub const MACHINE_COUNTS: [f64; 11] = [
    4.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0, 24.0, 32.0, 40.0, 48.0,
];

/// Builds the 3-dimensional Scout configuration grid (before restriction).
#[must_use]
pub fn space() -> ConfigSpace {
    SpaceBuilder::new()
        .categorical("vm_family", FAMILIES)
        .categorical("vm_size", SIZES)
        .numeric("machines", MACHINE_COUNTS)
        .build()
}

/// The restriction of the Scout grid: `xlarge` clusters go up to 24 machines
/// and `2xlarge` clusters up to 12.
#[must_use]
pub fn is_valid(space: &ConfigSpace, config: &Config) -> bool {
    let values = space.values(config);
    let size = values[1].1.as_label().expect("categorical").to_owned();
    let machines = values[2].1.as_number().expect("numeric");
    match size.as_str() {
        "xlarge" => machines <= 24.0,
        "2xlarge" => machines <= 12.0,
        _ => true,
    }
}

/// The 18 Scout job names (HiBench + spark-perf), each mapped to a resource
/// profile that stresses CPU, memory, network or a mix — mirroring the
/// heterogeneity of the original benchmark suite.
#[must_use]
pub fn job_profiles() -> Vec<AnalyticsJobProfile> {
    let mut profiles = vec![
        AnalyticsJobProfile::cpu_bound("wordcount", 12_000.0),
        AnalyticsJobProfile::shuffle_bound("sort", 60.0),
        AnalyticsJobProfile::shuffle_bound("terasort", 120.0),
        AnalyticsJobProfile::memory_bound("pagerank", 4.0),
        AnalyticsJobProfile::cpu_bound("bayes", 22_000.0),
        AnalyticsJobProfile::cpu_bound("kmeans", 30_000.0),
        AnalyticsJobProfile::memory_bound("nweight", 5.0),
        AnalyticsJobProfile::shuffle_bound("join", 80.0),
        AnalyticsJobProfile::cpu_bound("scan", 8_000.0),
        AnalyticsJobProfile::memory_bound("aggregation", 3.0),
        AnalyticsJobProfile::cpu_bound("scala-als", 40_000.0),
        AnalyticsJobProfile::cpu_bound("scala-gbt", 35_000.0),
        AnalyticsJobProfile::cpu_bound("scala-lr", 26_000.0),
        AnalyticsJobProfile::memory_bound("scala-pca", 6.0),
        AnalyticsJobProfile::cpu_bound("scala-rf", 32_000.0),
        AnalyticsJobProfile::memory_bound("scala-svd", 7.0),
        AnalyticsJobProfile::cpu_bound("scala-svm", 24_000.0),
        AnalyticsJobProfile::shuffle_bound("regression-data-gen", 100.0),
    ];
    // Give each job slightly different secondary characteristics so no two
    // jobs share the exact same landscape.
    for (i, p) in profiles.iter_mut().enumerate() {
        let tweak = 1.0 + 0.07 * (i as f64 % 5.0);
        p.input_gb *= tweak;
        p.serial_fraction = (p.serial_fraction * tweak).min(0.3);
    }
    profiles
}

/// Builds one Scout dataset from a job profile.
#[must_use]
pub fn dataset(profile: &AnalyticsJobProfile, seed: u64) -> LookupDataset {
    let space = space();
    let catalog = Catalog::aws();
    let model = AnalyticsModel::new(profile.clone());
    let noise = NoiseModel::default();
    let mut rng = SeededRng::new(seed ^ 0x5c00_75c0);
    let mut outcomes = BTreeMap::new();

    for id in space.ids() {
        let config = space.config_of(id);
        if !is_valid(&space, &config) {
            continue;
        }
        let values = space.values(&config);
        let family = values[0].1.as_label().expect("categorical").to_owned();
        let size = values[1].1.as_label().expect("categorical").to_owned();
        let machines = values[2].1.as_number().expect("numeric") as u32;
        let vm = catalog
            .get(&format!("{family}.{size}"))
            .expect("vm in catalog")
            .clone();
        let cluster = ClusterSpec::new(vm, machines);
        let runtime = model.runtime_seconds(&cluster) * noise.factor(&mut rng);
        let price_per_second = cluster.price_per_second();
        outcomes.insert(
            id,
            ConfigOutcome {
                runtime_seconds: runtime,
                cost: runtime * price_per_second,
                timed_out: false,
                price_per_second,
            },
        );
    }

    let mut dataset = LookupDataset::new(
        format!("scout/{}", profile.name),
        space,
        outcomes,
        f64::INFINITY.min(1e12),
    );
    dataset.set_tmax_to_median_runtime();
    dataset
}

/// Builds all 18 Scout datasets.
#[must_use]
pub fn all_datasets(seed: u64) -> Vec<LookupDataset> {
    job_profiles()
        .iter()
        .enumerate()
        .map(|(i, profile)| dataset(profile, seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lynceus_core::CostOracle;

    #[test]
    fn grid_and_restriction_match_the_paper_description() {
        let space = space();
        assert_eq!(space.dims(), 3);
        assert_eq!(space.len(), 99);
        let valid = space.restrict(|c| is_valid(&space, c));
        // 11 (large) + 8 (xlarge ≤ 24) + 5 (2xlarge ≤ 12) = 24 per family.
        assert_eq!(valid.len(), 72);
    }

    #[test]
    fn there_are_eighteen_distinct_jobs() {
        let profiles = job_profiles();
        assert_eq!(profiles.len(), 18);
        let names: std::collections::HashSet<_> = profiles.iter().map(|p| p.name.clone()).collect();
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn datasets_only_contain_valid_configurations() {
        let d = dataset(&job_profiles()[2], 3);
        assert_eq!(d.len(), 72);
        let space = d.space();
        for id in d.candidates() {
            assert!(is_valid(space, &space.config_of(id)));
        }
    }

    #[test]
    fn tmax_keeps_roughly_half_of_the_space_feasible() {
        for profile in job_profiles().iter().take(6) {
            let d = dataset(profile, 1);
            let frac = d.feasible_fraction();
            assert!((0.3..=0.7).contains(&frac), "{}: {frac}", d.name());
        }
    }

    #[test]
    fn different_jobs_have_different_optimal_configurations() {
        let datasets = all_datasets(1);
        assert_eq!(datasets.len(), 18);
        let optima: std::collections::HashSet<_> = datasets
            .iter()
            .map(|d| d.optimum().expect("feasible optimum").0)
            .collect();
        // The suite is heterogeneous: the jobs must not all share one optimum.
        assert!(optima.len() >= 4, "only {} distinct optima", optima.len());
    }

    #[test]
    fn datasets_are_deterministic_per_seed() {
        let a = dataset(&job_profiles()[0], 5);
        let b = dataset(&job_profiles()[0], 5);
        assert_eq!(a, b);
    }
}
