//! Lookup datasets: frozen `configuration → (runtime, cost)` tables.

use lynceus_core::{CostOracle, Observation};
use lynceus_space::{ConfigId, ConfigSpace};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The measured outcome of one configuration of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfigOutcome {
    /// Runtime in seconds (capped at the dataset's timeout when `timed_out`).
    pub runtime_seconds: f64,
    /// Cost in dollars.
    pub cost: f64,
    /// True if the run hit the dataset's hard timeout.
    pub timed_out: bool,
    /// Price rate of the configuration in dollars per second.
    pub price_per_second: f64,
}

/// A frozen dataset: a configuration space, the subset of it that was
/// actually profiled, one [`ConfigOutcome`] per profiled configuration and a
/// runtime constraint `Tmax`.
///
/// The type implements [`CostOracle`], so optimizers run against it exactly
/// as they would run against a live cloud deployment — except that "running
/// the job" is a table lookup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LookupDataset {
    name: String,
    space: ConfigSpace,
    outcomes: BTreeMap<ConfigId, ConfigOutcome>,
    tmax_seconds: f64,
}

impl LookupDataset {
    /// Builds a dataset from its measurements.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is empty or `tmax_seconds` is not positive.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        space: ConfigSpace,
        outcomes: BTreeMap<ConfigId, ConfigOutcome>,
        tmax_seconds: f64,
    ) -> Self {
        assert!(
            !outcomes.is_empty(),
            "a dataset needs at least one configuration"
        );
        assert!(tmax_seconds > 0.0, "tmax must be positive");
        Self {
            name: name.into(),
            space,
            outcomes,
            tmax_seconds,
        }
    }

    /// Dataset name (e.g. `"tensorflow/cnn"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The runtime constraint `Tmax` in seconds.
    #[must_use]
    pub fn tmax_seconds(&self) -> f64 {
        self.tmax_seconds
    }

    /// Overrides the runtime constraint (used by sensitivity experiments).
    ///
    /// # Panics
    ///
    /// Panics if `tmax_seconds` is not positive.
    pub fn set_tmax_seconds(&mut self, tmax_seconds: f64) {
        assert!(tmax_seconds > 0.0, "tmax must be positive");
        self.tmax_seconds = tmax_seconds;
    }

    /// Number of profiled configurations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True if the dataset has no configurations (never the case for a
    /// successfully constructed dataset).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// The outcome of one configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not part of the dataset.
    #[must_use]
    pub fn outcome(&self, id: ConfigId) -> ConfigOutcome {
        self.outcomes[&id]
    }

    /// True if the configuration satisfies the runtime constraint.
    #[must_use]
    pub fn is_feasible(&self, id: ConfigId) -> bool {
        let o = self.outcomes[&id];
        !o.timed_out && o.runtime_seconds <= self.tmax_seconds
    }

    /// The cheapest feasible configuration and its cost, if any configuration
    /// is feasible.
    #[must_use]
    pub fn optimum(&self) -> Option<(ConfigId, f64)> {
        self.outcomes
            .iter()
            .filter(|(id, _)| self.is_feasible(**id))
            .map(|(id, o)| (*id, o.cost))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Cost of a configuration normalized w.r.t. the optimum (the paper's CNO
    /// metric). Returns `None` when no configuration is feasible.
    #[must_use]
    pub fn cno(&self, cost: f64) -> Option<f64> {
        self.optimum().map(|(_, best)| cost / best)
    }

    /// The average cost of running the job on a configuration (`m̃` in the
    /// paper's budget rule `B = N·m̃·b`).
    #[must_use]
    pub fn mean_cost(&self) -> f64 {
        self.outcomes.values().map(|o| o.cost).sum::<f64>() / self.outcomes.len() as f64
    }

    /// Fraction of configurations that satisfy the runtime constraint.
    #[must_use]
    pub fn feasible_fraction(&self) -> f64 {
        let feasible = self
            .outcomes
            .keys()
            .filter(|&&id| self.is_feasible(id))
            .count();
        feasible as f64 / self.outcomes.len() as f64
    }

    /// The paper's budget rule: `B = N·m̃·b`, where `N` is the bootstrap
    /// count, `m̃` the mean configuration cost and `b` the budget multiplier
    /// (1 = low, 3 = medium, 5 = high).
    #[must_use]
    pub fn budget_for(&self, bootstrap_samples: usize, multiplier: f64) -> f64 {
        bootstrap_samples as f64 * self.mean_cost() * multiplier
    }

    /// All costs, sorted ascending and normalized by the optimum cost (the
    /// data behind Figure 1a). Returns an empty vector when no configuration
    /// is feasible.
    #[must_use]
    pub fn normalized_cost_landscape(&self) -> Vec<f64> {
        let Some((_, best)) = self.optimum() else {
            return Vec::new();
        };
        let mut costs: Vec<f64> = self.outcomes.values().map(|o| o.cost / best).collect();
        costs.sort_by(|a, b| a.total_cmp(b));
        costs
    }

    /// Sets `Tmax` to the median runtime of the dataset, so that roughly half
    /// of the configurations satisfy the constraint (the paper's methodology:
    /// "we set the time constraint for each job in such a way that it is
    /// satisfied by roughly half of the possible configurations").
    pub fn set_tmax_to_median_runtime(&mut self) {
        let mut runtimes: Vec<f64> = self.outcomes.values().map(|o| o.runtime_seconds).collect();
        runtimes.sort_by(|a, b| a.total_cmp(b));
        let median = runtimes[runtimes.len() / 2];
        // Nudge just above the median so the median configuration itself is
        // feasible.
        self.tmax_seconds = median * 1.000_001;
    }
}

impl CostOracle for LookupDataset {
    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn candidates(&self) -> Vec<ConfigId> {
        self.outcomes.keys().copied().collect()
    }

    fn run(&self, id: ConfigId) -> Observation {
        let o = self.outcomes[&id];
        Observation::new(o.runtime_seconds, o.cost)
    }

    fn price_rate(&self, id: ConfigId) -> f64 {
        self.outcomes[&id].price_per_second
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lynceus_space::SpaceBuilder;

    fn toy_dataset() -> LookupDataset {
        let space = SpaceBuilder::new()
            .numeric("x", (0..4).map(f64::from))
            .build();
        let mut outcomes = BTreeMap::new();
        for (i, (rt, cost)) in [(10.0, 5.0), (20.0, 3.0), (40.0, 2.0), (80.0, 10.0)]
            .iter()
            .enumerate()
        {
            outcomes.insert(
                ConfigId(i),
                ConfigOutcome {
                    runtime_seconds: *rt,
                    cost: *cost,
                    timed_out: false,
                    price_per_second: cost / rt,
                },
            );
        }
        LookupDataset::new("toy", space, outcomes, 30.0)
    }

    #[test]
    fn optimum_is_the_cheapest_feasible_configuration() {
        let d = toy_dataset();
        // Feasible: ids 0 (rt 10, cost 5) and 1 (rt 20, cost 3).
        let (best, cost) = d.optimum().unwrap();
        assert_eq!(best, ConfigId(1));
        assert_eq!(cost, 3.0);
        assert!(d.is_feasible(ConfigId(0)));
        assert!(!d.is_feasible(ConfigId(2)));
        assert_eq!(d.cno(6.0), Some(2.0));
    }

    #[test]
    fn oracle_interface_replays_the_table() {
        let d = toy_dataset();
        assert_eq!(d.candidates().len(), 4);
        let obs = d.run(ConfigId(2));
        assert_eq!(obs.runtime_seconds, 40.0);
        assert_eq!(obs.cost, 2.0);
        assert!((d.price_rate(ConfigId(2)) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn mean_cost_and_budget_rule() {
        let d = toy_dataset();
        assert!((d.mean_cost() - 5.0).abs() < 1e-12);
        assert!((d.budget_for(3, 2.0) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn median_tmax_makes_roughly_half_the_space_feasible() {
        let mut d = toy_dataset();
        d.set_tmax_to_median_runtime();
        let frac = d.feasible_fraction();
        assert!((0.4..=0.8).contains(&frac), "feasible fraction {frac}");
    }

    #[test]
    fn normalized_landscape_is_sorted_and_starts_at_one() {
        let d = toy_dataset();
        let landscape = d.normalized_cost_landscape();
        assert_eq!(landscape.len(), 4);
        assert!((landscape[0] - 2.0 / 3.0).abs() < 1e-12); // infeasible cheaper config
        for w in landscape.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn timed_out_configurations_are_infeasible_even_if_fast() {
        let space = SpaceBuilder::new().numeric("x", [0.0, 1.0]).build();
        let mut outcomes = BTreeMap::new();
        outcomes.insert(
            ConfigId(0),
            ConfigOutcome {
                runtime_seconds: 5.0,
                cost: 1.0,
                timed_out: true,
                price_per_second: 0.2,
            },
        );
        outcomes.insert(
            ConfigId(1),
            ConfigOutcome {
                runtime_seconds: 8.0,
                cost: 2.0,
                timed_out: false,
                price_per_second: 0.25,
            },
        );
        let d = LookupDataset::new("t", space, outcomes, 10.0);
        assert!(!d.is_feasible(ConfigId(0)));
        assert_eq!(d.optimum().unwrap().0, ConfigId(1));
    }

    #[test]
    #[should_panic(expected = "at least one configuration")]
    fn empty_dataset_panics() {
        let space = SpaceBuilder::new().numeric("x", [0.0]).build();
        let _ = LookupDataset::new("empty", space, BTreeMap::new(), 1.0);
    }
}
