//! Offline stand-in for `serde`.
//!
//! This workspace builds in an environment without network access to a crate
//! registry, so the real `serde` cannot be fetched. Every crate in the
//! workspace annotates its public data types with
//! `#[derive(Serialize, Deserialize)]` to document that they are meant to be
//! serializable, but no code path performs serialization yet. This stub
//! re-exports no-op derive macros so those annotations compile; replacing
//! the `[patch]`-free path dependency with the real `serde = "1"` is all
//! that is needed once a registry is reachable.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
