//! No-op derive macros standing in for `serde_derive`.
//!
//! The build environment for this repository has no access to crates.io, so
//! the real `serde`/`serde_derive` cannot be vendored. The workspace only
//! uses `#[derive(Serialize, Deserialize)]` as inert annotations (nothing is
//! actually serialized anywhere yet); these derives expand to nothing, which
//! keeps every annotated type compiling while recording the intent. Swap
//! this stub for the real crates once a registry is reachable.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Expands to nothing; placeholder for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; placeholder for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
