//! Joint hyper-parameter + cloud tuning of a TensorFlow training job: the
//! paper's headline scenario (Section 5.1.1).
//!
//! Lynceus and the CherryPick-style BO baseline are given the same budget on
//! the CNN dataset (384 configurations over 5 dimensions) and their
//! recommendations are compared against the true optimum.
//!
//! Run with `cargo run --release --example tensorflow_tuning`.

use lynceus::datasets::tensorflow;
use lynceus::prelude::*;
use lynceus::sim::NetworkKind;

fn main() {
    let job = tensorflow::dataset(NetworkKind::Cnn, catalog::DEFAULT_SEED);
    let (optimal_id, optimal_cost) = job
        .optimum()
        .expect("the dataset has feasible configurations");
    println!(
        "CNN dataset: {} configurations, Tmax = {:.0} s, optimal cost ${:.4} at {:?}",
        job.len(),
        job.tmax_seconds(),
        optimal_cost,
        job.space().values(&job.space().config_of(optimal_id)),
    );

    let bootstrap = OptimizerSettings::default().bootstrap_count(job.len(), job.space().dims());
    let settings = OptimizerSettings {
        budget: job.budget_for(bootstrap, 3.0), // the paper's medium budget
        tmax_seconds: job.tmax_seconds(),
        lookahead: 1, // use 2 for the paper's default (slower)
        ..OptimizerSettings::default()
    };

    for (name, report) in [
        (
            "Lynceus",
            LynceusOptimizer::new(settings.clone()).optimize(&job, 7),
        ),
        (
            "BO (CherryPick-style)",
            BoOptimizer::new(settings.clone()).optimize(&job, 7),
        ),
    ] {
        let cno = report
            .recommended_cost
            .map(|c| c / optimal_cost)
            .unwrap_or(f64::NAN);
        println!(
            "{name:>22}: {} explorations, ${:.3} spent, CNO = {:.2}",
            report.num_explorations(),
            report.budget_spent,
            cno
        );
    }
}
