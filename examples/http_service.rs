//! The tuner as a network service: a `serve::Server` in front of a
//! `TuningService`, with a client submitting tuning sessions over plain
//! HTTP/1.1 + JSON.
//!
//! The example starts a server on a loopback ephemeral port with a small
//! oracle registry (specs *name* their oracle; oracles never cross the
//! wire), submits three sessions over the wire, long-polls each to its
//! terminal state, fetches the report and the decision-receipt trail, and
//! then demonstrates admission control: against a server capped at two
//! live sessions, a five-session burst is shed down to exactly two
//! admissions, each rejection carrying a `Retry-After` hint.
//!
//! Run with `cargo run --release --example http_service`.

use lynceus::core::{CostOracle, TableOracle};
use lynceus::prelude::*;
use lynceus::serve::server::OracleFactory;
use lynceus::serve::wire;
use std::sync::Arc;

fn valley_oracle(shift: f64) -> TableOracle {
    let space = SpaceBuilder::new()
        .numeric("workers", (0..10).map(f64::from))
        .numeric("memory_gb", (0..4).map(f64::from))
        .build();
    TableOracle::from_fn(space, 1.0, move |f| {
        20.0 + (f[0] - shift).powi(2) * 4.0 + (f[1] - 1.0).powi(2) * 8.0
    })
}

/// The server-side oracle registry: `valley-<shift>` is the whole
/// vocabulary this deployment tunes against.
fn registry() -> OracleFactory {
    Arc::new(|name: &str| -> Option<Box<dyn CostOracle>> {
        let shift: f64 = name.strip_prefix("valley-")?.parse().ok()?;
        Some(Box::new(valley_oracle(shift)))
    })
}

fn settings(budget: f64) -> OptimizerSettings {
    OptimizerSettings {
        budget,
        tmax_seconds: 1e6,
        bootstrap_samples: Some(3),
        lookahead: 1,
        gauss_hermite_nodes: 2,
        ..OptimizerSettings::default()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- A serving deployment --------------------------------------------
    let server = Server::start(ServerConfig::default(), registry())?;
    println!("serving on http://{}", server.addr());

    let mut client = Client::connect(server.addr())?;
    for (i, shift) in [2.0, 4.0, 7.0].iter().enumerate() {
        let spec = SpecRequest::new(
            format!("wire-job-{i}"),
            format!("valley-{shift}"),
            settings(300.0 + 50.0 * i as f64),
            i as u64,
        );
        let accepted = client.post("/v1/sessions", &wire::encode_spec(&spec).to_json())?;
        println!(
            "submitted {:<11} -> {} {}",
            spec.name, accepted.status, accepted.body
        );
    }

    for id in 0..3 {
        // ?wait=1 long-polls until the session is terminal.
        client.get(&format!("/v1/sessions/{id}?wait=1"))?;
        let report = client.get(&format!("/v1/sessions/{id}/report"))?;
        let body = report.json()?;
        let report =
            wire::decode_report(body.get("report").ok_or("no report")?).map_err(|e| e.0)?;
        let receipts = client.get(&format!("/v1/sessions/{id}/receipts"))?;
        let receipts = receipts.json()?;
        let receipts = receipts
            .get("receipts")
            .and_then(|v| v.as_arr())
            .map_or(0, <[_]>::len);
        println!(
            "session {id}: recommended {:?} at cost {:.2} after {} runs ({} receipts)",
            report.recommended,
            report.recommended_cost.unwrap_or(f64::NAN),
            report.num_explorations(),
            receipts,
        );
    }
    server.shutdown();

    // --- Admission control -----------------------------------------------
    // A deployment capped at two live sessions sheds the rest of a burst
    // with 503 + Retry-After and zero server-side effect.
    let capped = Server::start(
        ServerConfig {
            admission: AdmissionPolicy {
                max_live: 2,
                retry_after_seconds: 5,
            },
            // Hold mode so the burst cannot race its own completions —
            // the same switch the conformance suite and load bench use.
            hold_sessions: true,
            ..ServerConfig::default()
        },
        registry(),
    )?;
    let mut client = Client::connect(capped.addr())?;
    let spec = SpecRequest::new("burst", "valley-3", settings(300.0), 9);
    let body = wire::encode_spec(&spec).to_json();
    for i in 0..5 {
        let response = client.post("/v1/sessions", &body)?;
        match response.status {
            202 => println!("burst {i}: admitted"),
            503 => println!(
                "burst {i}: shed, retry after {}s",
                response.header("retry-after").unwrap_or("?")
            ),
            other => println!("burst {i}: unexpected {other}"),
        }
    }
    let stats = client.get("/v1/stats")?;
    println!("admission counters: {}", stats.body);
    capped.shutdown();
    Ok(())
}
