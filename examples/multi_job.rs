//! Multi-job serving: one process, one shared worker pool, many tuning
//! sessions stepping concurrently.
//!
//! Nine sessions — Spark jobs from the Scout and CherryPick datasets and
//! TensorFlow training jobs, each with its own budget, seed and scheduling
//! priority — run through one `TuningService` under the `Priority` policy:
//! the scheduler steps up to one session per worker slot in parallel, higher
//! priorities drain first, and the starvation guard keeps priority-0 jobs
//! progressing. A tenth session wraps its oracle so that it starts
//! reporting an infinite cost mid-run: it ends in a `Failed` state with a
//! diagnostic and a partial report while every other session finishes
//! untouched. Finally, two late sessions are submitted after the first wave
//! drained — the steady-submission path of a long-lived service.
//!
//! Run with `cargo run --release --example multi_job`.

use lynceus::core::{CostOracle, SchedulePolicy, SessionOutcome, SessionStatus};
use lynceus::datasets::{catalog, LookupDataset};
use lynceus::experiments::ExperimentConfig;
use lynceus::prelude::*;
use lynceus::space::{ConfigId, ConfigSpace};

/// Wraps an oracle so it reports an unusable (infinite) cost after a number
/// of clean runs — the "cloud went sideways" failure mode the service must
/// isolate to the offending session.
struct FlakyOracle {
    inner: LookupDataset,
    clean_runs: std::sync::atomic::AtomicUsize,
}

impl CostOracle for FlakyOracle {
    fn space(&self) -> &ConfigSpace {
        self.inner.space()
    }
    fn candidates(&self) -> Vec<ConfigId> {
        self.inner.candidates()
    }
    fn run(&self, id: ConfigId) -> Observation {
        use std::sync::atomic::Ordering;
        // ordering: Relaxed — one lane steps this session at a time, and the
        // scheduler's lock hand-offs order the load/store pair.
        let left = self.clean_runs.load(Ordering::Relaxed);
        if left == 0 {
            return Observation::new(1.0, f64::INFINITY);
        }
        // ordering: Relaxed — same single-stepper argument as the load above.
        self.clean_runs.store(left - 1, Ordering::Relaxed);
        self.inner.run(id)
    }
    fn price_rate(&self, id: ConfigId) -> f64 {
        self.inner.price_rate(id)
    }
}

fn print_outcome(outcome: &SessionOutcome) {
    match &outcome.status {
        SessionStatus::Finished(report) => println!(
            "[done]   {:<42} {:>2} runs, ${:>8.2} spent, best {}",
            outcome.name,
            report.num_explorations(),
            report.budget_spent,
            report
                .recommended_cost
                .map_or_else(|| "-".into(), |c| format!("${c:.2}")),
        ),
        SessionStatus::Failed { error, partial } => println!(
            "[FAILED] {:<42} after {} runs: {error}",
            outcome.name,
            partial
                .as_ref()
                .map_or(0, OptimizationReport::num_explorations),
        ),
        SessionStatus::Suspended { steps } => {
            println!("[parked] {:<42} checkpointed at step {steps}", outcome.name,)
        }
    }
}

fn main() {
    // A cheap-but-realistic setup: lookahead 1, 2 Gauss–Hermite nodes, the
    // paper's low-budget rule.
    let experiment = ExperimentConfig {
        gauss_hermite_nodes: 2,
        budget_multiplier: 1.0,
        ..ExperimentConfig::default()
    };
    let settings_of = |dataset: &LookupDataset| {
        let mut s = experiment.settings_for(dataset, 1);
        s.parallel_paths = true;
        s
    };

    // Nine heterogeneous jobs: 4 Scout, 3 CherryPick, 2 TensorFlow. The
    // TensorFlow trainings are marked urgent; everything else shares the
    // default priority and steps round-robin among equals.
    let mut jobs: Vec<(LookupDataset, i64)> = Vec::new();
    jobs.extend(
        catalog::scout_datasets()
            .into_iter()
            .take(4)
            .map(|d| (d, 0)),
    );
    jobs.extend(
        catalog::cherrypick_datasets()
            .into_iter()
            .take(3)
            .map(|d| (d, 0)),
    );
    jobs.extend(
        catalog::tensorflow_datasets()
            .into_iter()
            .take(2)
            .map(|d| (d, 5)),
    );

    let service = TuningService::new().with_policy(SchedulePolicy::Priority);
    println!(
        "serving {} sessions over {} worker slot(s) / scheduler lane(s), policy {:?}\n",
        jobs.len() + 1,
        service.shared_pool().capacity(),
        service.policy(),
    );
    for (i, (dataset, priority)) in jobs.into_iter().enumerate() {
        let settings = settings_of(&dataset);
        let name = dataset.name().to_owned();
        service.submit(
            SessionSpec::new(name, settings, Box::new(dataset), 7 + i as u64)
                .with_priority(priority),
        );
    }
    // The deliberately flaky session: clean for 2 runs, then poisoned.
    let flaky_base = catalog::scout_datasets()
        .into_iter()
        .nth(5)
        .expect("scout has 18 jobs");
    let flaky_settings = settings_of(&flaky_base);
    service.submit(SessionSpec::new(
        format!("{} (flaky oracle)", flaky_base.name()),
        flaky_settings,
        Box::new(FlakyOracle {
            inner: flaky_base,
            clean_runs: std::sync::atomic::AtomicUsize::new(2),
        }),
        99,
    ));

    // First wave: drain the initial population (outcomes arrive in
    // completion order while the scheduler is still stepping the rest).
    let first_wave = service.run_until_idle();
    for outcome in &first_wave {
        print_outcome(outcome);
    }

    // Steady submission: the service is idle but alive — late arrivals
    // reuse the same lanes and pool.
    println!("\ntwo late sessions join the running service…\n");
    for (i, dataset) in catalog::scout_datasets()
        .into_iter()
        .skip(6)
        .take(2)
        .enumerate()
    {
        let settings = settings_of(&dataset);
        let name = format!("{} (late)", dataset.name());
        service.submit(SessionSpec::new(
            name,
            settings,
            Box::new(dataset),
            40 + i as u64,
        ));
    }
    let second_wave = service.run_until_idle();
    for outcome in &second_wave {
        print_outcome(outcome);
    }
    let leftovers = service.shutdown();
    assert!(leftovers.is_empty(), "every outcome was already delivered");

    let outcomes: Vec<SessionOutcome> = first_wave.into_iter().chain(second_wave).collect();
    let finished = outcomes.iter().filter(|o| !o.is_failed()).count();
    let failed = outcomes.len() - finished;
    println!("\n{finished} sessions finished, {failed} failed (isolated)");
    assert_eq!(failed, 1, "only the flaky session may fail");
    assert!(
        outcomes
            .iter()
            .filter(|o| !o.is_failed())
            .all(|o| o.report().is_some()),
        "healthy sessions must produce reports"
    );
}
