//! Bringing your own job: implement `CostOracle` for a workload simulated
//! with the bundled cloud + performance-model substrates, and account for
//! cluster switching costs (paper Section 4.4, "Setup costs").
//!
//! Run with `cargo run --example custom_job`.

use lynceus::cloud::{Catalog, ClusterSpec, SetupCostModel};
use lynceus::core::switching::FnSwitching;
use lynceus::prelude::*;
use lynceus::sim::{AnalyticsJobProfile, AnalyticsModel};
use lynceus::space::ConfigSpace;

/// A nightly ETL job simulated with the analytic batch-analytics model.
struct NightlyEtl {
    space: ConfigSpace,
    model: AnalyticsModel,
    catalog: Catalog,
}

impl NightlyEtl {
    fn new() -> Self {
        let mut profile = AnalyticsJobProfile::shuffle_bound("nightly-etl", 150.0);
        profile.compute_core_seconds = 25_000.0;
        Self {
            space: SpaceBuilder::new()
                .categorical("vm", ["m4.large", "m4.xlarge", "c4.xlarge", "r4.xlarge"])
                .numeric("nodes", [4.0, 8.0, 12.0, 16.0, 24.0, 32.0])
                .build(),
            model: AnalyticsModel::new(profile),
            catalog: Catalog::aws(),
        }
    }

    fn cluster(&self, id: ConfigId) -> ClusterSpec {
        let config = self.space.config_of(id);
        let values = self.space.values(&config);
        let vm = self
            .catalog
            .get(values[0].1.as_label().unwrap())
            .unwrap()
            .clone();
        ClusterSpec::new(vm, values[1].1.as_number().unwrap() as u32)
    }
}

impl CostOracle for NightlyEtl {
    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn candidates(&self) -> Vec<ConfigId> {
        self.space.ids().collect()
    }

    fn run(&self, id: ConfigId) -> Observation {
        let cluster = self.cluster(id);
        let runtime = self.model.runtime_seconds(&cluster);
        Observation::new(runtime, runtime * cluster.price_per_second())
    }

    fn price_rate(&self, id: ConfigId) -> f64 {
        self.cluster(id).price_per_second()
    }
}

fn main() {
    let job = NightlyEtl::new();
    let setup = SetupCostModel::default();

    // Charge cluster-switching time at the new cluster's price on every
    // profiling run, so the optimizer prefers exploration orders that reuse
    // the deployed cluster.
    let space_for_switch = job.space.clone();
    let catalog = Catalog::aws();
    let switching = FnSwitching(move |from: Option<ConfigId>, to: ConfigId| {
        let cluster_of = |id: ConfigId| {
            let values = space_for_switch.values(&space_for_switch.config_of(id));
            let vm = catalog
                .get(values[0].1.as_label().unwrap())
                .unwrap()
                .clone();
            ClusterSpec::new(vm, values[1].1.as_number().unwrap() as u32)
        };
        setup.setup_cost(from.map(&cluster_of).as_ref(), &cluster_of(to))
    });

    let settings = OptimizerSettings {
        budget: 5.0,
        tmax_seconds: 1_200.0, // the nightly window
        lookahead: 1,
        ..OptimizerSettings::default()
    };
    let report = LynceusOptimizer::new(settings)
        .with_switching_cost(Box::new(switching))
        .optimize(&job, 2024);

    let id = report.recommended.expect("a feasible cluster exists");
    println!(
        "recommended cluster: {:?} — ${:.3} per nightly run ({} profiling runs, ${:.2} spent)",
        job.space.values(&job.space.config_of(id)),
        report.recommended_cost.unwrap(),
        report.num_explorations(),
        report.budget_spent,
    );
}
