//! Budget sensitivity (the experiment behind Figures 8 and 9): how the
//! quality of the recommendation and the number of explorations change with
//! the profiling budget b ∈ {1, 3, 5}.
//!
//! Run with `cargo run --release --example budget_sweep`.

use lynceus::datasets::scout;
use lynceus::experiments::runner::run_metrics;
use lynceus::math::stats::mean;
use lynceus::prelude::*;

fn main() {
    let job = scout::dataset(&scout::job_profiles()[5], catalog::DEFAULT_SEED);
    println!("job: {} ({} configurations)", job.name(), job.len());
    println!(
        "{:>4} {:>12} {:>12} {:>10}",
        "b", "optimizer", "avg CNO", "avg NEX"
    );

    for b in [1.0, 3.0, 5.0] {
        let config = ExperimentConfig::default()
            .with_runs(5)
            .with_budget_multiplier(b);
        for kind in [OptimizerKind::Lynceus { lookahead: 1 }, OptimizerKind::Bo] {
            let metrics = run_metrics(&job, kind, &config);
            let cnos: Vec<f64> = metrics.iter().filter_map(|m| m.cno).collect();
            let nex: Vec<f64> = metrics.iter().map(|m| m.nex as f64).collect();
            println!(
                "{:>4} {:>12} {:>12.3} {:>10.1}",
                b,
                kind.label(),
                mean(&cnos),
                mean(&nex)
            );
        }
    }
}
