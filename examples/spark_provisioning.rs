//! Cluster provisioning for Spark/Hadoop analytics (the Scout and CherryPick
//! scenario): only the cloud configuration is tuned.
//!
//! Run with `cargo run --release --example spark_provisioning`.

use lynceus::datasets::scout;
use lynceus::prelude::*;

fn main() {
    for profile in scout::job_profiles().iter().take(3) {
        let job = scout::dataset(profile, catalog::DEFAULT_SEED);
        let (_, optimal_cost) = job.optimum().expect("feasible optimum");

        let bootstrap = OptimizerSettings::default().bootstrap_count(job.len(), job.space().dims());
        let settings = OptimizerSettings {
            budget: job.budget_for(bootstrap, 3.0),
            tmax_seconds: job.tmax_seconds(),
            lookahead: 2,
            ..OptimizerSettings::default()
        };
        let report = LynceusOptimizer::new(settings).optimize(&job, 3);
        let id = report
            .recommended
            .expect("a feasible configuration was found");
        let cluster = job.space().values(&job.space().config_of(id));
        println!(
            "{:<22} -> {:?}  (CNO {:.2}, {} runs profiled)",
            job.name(),
            cluster,
            report.recommended_cost.unwrap() / optimal_cost,
            report.num_explorations()
        );
    }
}
