//! Quickstart: tune a toy job with Lynceus in a dozen lines.
//!
//! Run with `cargo run --example quickstart`.

use lynceus::prelude::*;

fn main() {
    // A synthetic job over a 2-dimensional grid: more workers make it faster
    // (up to a point), the "batch" parameter shifts the sweet spot.
    let space = SpaceBuilder::new()
        .numeric("workers", (1..=8).map(f64::from))
        .numeric("batch", [16.0, 64.0, 256.0])
        .build();
    let oracle = TableOracle::from_fn(space, 0.01, |features| {
        let workers = features[0];
        let batch = features[1];
        40.0 + 600.0 / (workers * (1.0 + batch / 512.0)) + workers * 6.0
    });

    let settings = OptimizerSettings {
        budget: 15.0,        // dollars available for profiling runs
        tmax_seconds: 400.0, // the job must finish within 400 s
        lookahead: 1,
        ..OptimizerSettings::default()
    };
    let report = LynceusOptimizer::new(settings).optimize(&oracle, 42);

    println!("explored {} configurations", report.num_explorations());
    println!("spent ${:.2} of the profiling budget", report.budget_spent);
    match report.recommended {
        Some(id) => {
            let config = oracle.space().config_of(id);
            println!(
                "recommended configuration: {:?}",
                oracle.space().values(&config)
            );
            println!("its cost per run: ${:.3}", report.recommended_cost.unwrap());
        }
        None => println!("no configuration satisfied the deadline"),
    }
}
