//! The multiple-constraints extension (paper Section 4.4): besides the
//! deadline, the job must also keep a secondary metric (here, simulated
//! energy consumption) under a threshold.
//!
//! Run with `cargo run --example multi_constraint`.

use lynceus::prelude::*;
use lynceus::space::ConfigSpace;

/// A toy oracle that also reports energy: big clusters are fast but burn
/// more energy.
struct EnergyAwareJob {
    space: ConfigSpace,
}

impl CostOracle for EnergyAwareJob {
    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn candidates(&self) -> Vec<ConfigId> {
        self.space.ids().collect()
    }

    fn run(&self, id: ConfigId) -> Observation {
        let features = self.space.features_of(id);
        let workers = features[0];
        let runtime = 30.0 + 500.0 / workers;
        let cost = runtime * 0.002 * workers;
        let energy = workers * runtime * 0.8; // watt-hours, say
        Observation::new(runtime, cost).with_metrics(vec![energy])
    }

    fn price_rate(&self, id: ConfigId) -> f64 {
        0.002 * self.space.features_of(id)[0]
    }
}

fn main() {
    let job = EnergyAwareJob {
        space: SpaceBuilder::new()
            .numeric("workers", (1..=16).map(f64::from))
            .build(),
    };

    let unconstrained = OptimizerSettings {
        budget: 30.0,
        tmax_seconds: 200.0,
        lookahead: 1,
        ..OptimizerSettings::default()
    };
    let mut energy_capped = unconstrained.clone();
    // Metric 0 (energy) must stay below 2_500 Wh.
    energy_capped.secondary_constraints = vec![SecondaryConstraint::new(0, 2_500.0)];

    for (label, settings) in [
        ("deadline only", unconstrained),
        ("deadline + energy cap", energy_capped),
    ] {
        let report = LynceusOptimizer::new(settings).optimize(&job, 11);
        let id = report.recommended.expect("feasible configuration found");
        let obs = job.run(id);
        println!(
            "{label:<22}: workers = {:>2}, runtime = {:>5.1}s, cost = ${:.3}, energy = {:>6.0} Wh",
            job.space.features_of(id)[0],
            obs.runtime_seconds,
            obs.cost,
            obs.metrics[0]
        );
    }
}
